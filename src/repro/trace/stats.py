"""Trace-level statistics.

These are the raw-trace measurements used by Table 2's instruction
profile columns (% memory instructions, % memory reads) and by the
calibration machinery (footprints, stride spectra, per-core balance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.record import AccessKind, TraceChunk


@dataclass(slots=True)
class TraceProfile:
    """Summary statistics for a trace."""

    accesses: int
    reads: int
    writes: int
    footprint_lines: int
    footprint_bytes: int
    line_size: int
    per_core: dict[int, int] = field(default_factory=dict)

    @property
    def read_fraction(self) -> float:
        """Fraction of transactions that are reads (paper: 56-96%)."""
        return self.reads / self.accesses if self.accesses else 0.0


def profile_trace(chunk: TraceChunk, line_size: int = 64) -> TraceProfile:
    """Compute summary statistics for ``chunk`` at the given line size."""
    reads = chunk.read_count()
    lines = chunk.lines(line_size)
    distinct = int(np.unique(lines).size)
    cores, counts = np.unique(chunk.cores, return_counts=True)
    return TraceProfile(
        accesses=len(chunk),
        reads=reads,
        writes=len(chunk) - reads,
        footprint_lines=distinct,
        footprint_bytes=distinct * line_size,
        line_size=line_size,
        per_core={int(c): int(n) for c, n in zip(cores, counts)},
    )


def footprint_bytes(chunk: TraceChunk, line_size: int = 64) -> int:
    """Distinct bytes touched, rounded up to whole cache lines."""
    return int(np.unique(chunk.lines(line_size)).size) * line_size


def stride_histogram(chunk: TraceChunk, top: int = 8) -> dict[int, float]:
    """Return the ``top`` most common successive-address strides.

    The fraction of constant-stride transitions is what a hardware
    stride prefetcher can exploit; workloads in the paper show dominant
    unit/constant strides (hence the Figure 8 gains).
    """
    if len(chunk) < 2:
        return {}
    deltas = np.diff(chunk.addresses.astype(np.int64))
    values, counts = np.unique(deltas, return_counts=True)
    order = np.argsort(counts)[::-1][:top]
    total = len(deltas)
    return {int(values[i]): float(counts[i] / total) for i in order}


def dominant_stride_fraction(chunk: TraceChunk, max_stride: int = 4096) -> float:
    """Fraction of transitions whose stride is constant and small.

    Used as a first-order estimate of stride-prefetcher coverage on
    instrumented kernel traces.
    """
    hist = stride_histogram(chunk, top=64)
    return sum(f for s, f in hist.items() if s != 0 and abs(s) <= max_stride)


def working_set_curve(
    chunk: TraceChunk, line_size: int = 64, points: int = 32
) -> list[tuple[int, int]]:
    """Footprint growth: (accesses consumed, distinct lines so far).

    A cheap visualization of working-set build-up over a run, sampled at
    ``points`` evenly spaced positions in the trace.
    """
    lines = chunk.lines(line_size)
    n = len(lines)
    if n == 0:
        return []
    # First-occurrence mask via stable unique.
    _, first_index = np.unique(lines, return_index=True)
    novel = np.zeros(n, dtype=np.int64)
    novel[first_index] = 1
    cumulative = np.cumsum(novel)
    positions = np.linspace(1, n, num=min(points, n), dtype=np.int64)
    return [(int(p), int(cumulative[p - 1])) for p in positions]
