"""Trace-stream combinators.

A *trace stream* is any iterable of :class:`~repro.trace.record.TraceChunk`.
Streams are how workload threads hand their memory transactions to the
DEX scheduler, and how the scheduler hands the interleaved, core-tagged
transaction sequence to the front-side bus.

The central combinator is :func:`round_robin_interleave`, which models
what SoftSDV's DEX mode does physically: one host processor executes the
work of many virtual cores in time slices, so the bus observes quantum
``Q`` of core 0, then quantum ``Q`` of core 1, and so on.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import TraceError
from repro.trace.record import TraceChunk

TraceStream = Iterable[TraceChunk]


def chunk_stream(chunk: TraceChunk, chunk_size: int = 65536) -> Iterator[TraceChunk]:
    """Split one large chunk into a stream of bounded-size chunks."""
    if chunk_size <= 0:
        raise TraceError(f"chunk_size must be positive, got {chunk_size}")
    for start in range(0, len(chunk), chunk_size):
        yield chunk[start : start + chunk_size]


def concat(streams: Sequence[TraceStream]) -> Iterator[TraceChunk]:
    """Yield all chunks of each stream, one stream after another."""
    for stream in streams:
        yield from stream


def materialize(stream: TraceStream) -> TraceChunk:
    """Drain a stream into a single chunk (for analysis and tests)."""
    return TraceChunk.concatenate(list(stream))


class StreamCursor:
    """Incremental consumption of a trace stream in arbitrary bites.

    Used by the round-robin interleaver here and by the DEX scheduler,
    both of which pull fixed quanta from per-core streams.
    """

    __slots__ = ("iterator", "pending", "offset", "done")

    def __init__(self, stream: TraceStream) -> None:
        self.iterator = iter(stream)
        self.pending: TraceChunk | None = None
        self.offset = 0
        self.done = False

    def take(self, n: int) -> TraceChunk:
        """Consume up to ``n`` transactions; short chunks mean exhaustion."""
        parts: list[TraceChunk] = []
        need = n
        while need > 0 and not self.done:
            if self.pending is None or self.offset >= len(self.pending):
                try:
                    self.pending = next(self.iterator)
                    self.offset = 0
                except StopIteration:
                    self.done = True
                    break
            available = len(self.pending) - self.offset
            grab = min(available, need)
            parts.append(self.pending[self.offset : self.offset + grab])
            self.offset += grab
            need -= grab
        return TraceChunk.concatenate(parts)


def round_robin_interleave(
    streams: Sequence[TraceStream],
    quantum: int = 1024,
    tag_cores: bool = True,
) -> Iterator[TraceChunk]:
    """Interleave per-thread streams in fixed quanta, the way DEX schedules.

    Args:
        streams: one stream per virtual core, in core-id order.
        quantum: number of transactions each core issues per time slice.
            This models the DEX scheduling quantum; the paper's platform
            time-slices virtual cores on the physical processor.
        tag_cores: when True, re-tag every chunk of ``streams[i]`` with
            core id ``i`` (the common case: per-thread generators emit
            core 0 and the scheduler assigns real ids).

    Yields one chunk per time slice until every stream is exhausted.
    Streams that finish early simply drop out of the rotation, as a
    finished guest thread would.
    """
    if quantum <= 0:
        raise TraceError(f"quantum must be positive, got {quantum}")
    cursors = [StreamCursor(s) for s in streams]
    active = list(range(len(cursors)))
    while active:
        still_active: list[int] = []
        for core in active:
            piece = cursors[core].take(quantum)
            if len(piece):
                yield piece.with_core(core) if tag_cores else piece
            if not cursors[core].done or len(piece) == quantum:
                still_active.append(core)
        active = still_active


def split_by_core(chunk: TraceChunk) -> dict[int, TraceChunk]:
    """Partition a chunk into per-core chunks, preserving program order."""
    result: dict[int, TraceChunk] = {}
    for core in np.unique(chunk.cores):
        mask = chunk.cores == core
        result[int(core)] = TraceChunk(
            chunk.addresses[mask], chunk.kinds[mask], chunk.cores[mask], chunk.pcs[mask]
        )
    return result


def map_chunks(
    stream: TraceStream, transform: Callable[[TraceChunk], TraceChunk]
) -> Iterator[TraceChunk]:
    """Apply ``transform`` to every chunk of ``stream``."""
    for chunk in stream:
        yield transform(chunk)


def limit(stream: TraceStream, max_accesses: int) -> Iterator[TraceChunk]:
    """Truncate a stream after ``max_accesses`` transactions."""
    remaining = max_accesses
    for chunk in stream:
        if remaining <= 0:
            return
        if len(chunk) <= remaining:
            remaining -= len(chunk)
            yield chunk
        else:
            yield chunk[:remaining]
            return
