"""Trace synthesis from reuse profiles (the model→trace bridge).

The repository mostly moves information model-ward: traces are measured
and condensed into :class:`ReuseProfile` s.  This module goes the other
way — given a profile, synthesize a concrete address trace whose
stack-distance distribution matches it — using the classical LRU
stack-model generator:

maintain an explicit LRU stack of lines; for each access draw a target
stack depth from the profile (or a cold miss, allocating a fresh line)
and reference the line at that depth, which moves it to the top.

Uses: driving the *exact* platform (emulator, prefetcher, coherence)
with traffic matching an analytic model that has no generator-level
equivalent — e.g. a measured profile from one kernel replayed at 10x
the length, or a hand-edited what-if profile.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, TraceError
from repro.reuse.histogram import ReuseProfile
from repro.trace.record import TraceChunk


def synthesize_trace(
    profile: ReuseProfile,
    accesses: int,
    line_size: int = 64,
    base_address: int = 0x4000_0000,
    seed: int = 0,
) -> TraceChunk:
    """Generate ``accesses`` transactions matching ``profile``'s reuse.

    Finite distances reference the line at that LRU depth (clamped to
    the current stack); infinite distances allocate never-again-used
    lines.  The empirical stack-distance distribution of the result
    converges to the profile as the trace grows (validated in
    ``tests/test_trace_synthesis.py``).
    """
    if accesses < 0:
        raise ConfigurationError(f"accesses must be non-negative, got {accesses}")
    rates = profile.rates
    total = rates.sum()
    if total <= 0:
        raise TraceError("profile has no access mass to synthesize from")
    rng = np.random.default_rng(seed)
    draws = rng.choice(len(rates), size=accesses, p=rates / total)
    distances = profile.distances[draws]

    stack: list[int] = []  # index 0 = MRU line id
    next_line = 0
    out = np.empty(accesses, dtype=np.uint64)
    for i in range(accesses):
        d = distances[i]
        if not np.isfinite(d) or not stack:
            line = next_line
            next_line += 1
            stack.insert(0, line)
        else:
            # Draw depth d: the line with exactly floor(d) distinct
            # lines above it; clamp to the warm stack and allocate cold
            # when the requested depth exceeds it.
            depth = int(d)
            if depth >= len(stack):
                line = next_line
                next_line += 1
                stack.insert(0, line)
            else:
                line = stack.pop(depth)
                stack.insert(0, line)
        out[i] = line
    addresses = np.uint64(base_address) + out * np.uint64(line_size)
    return TraceChunk(addresses)


def resynthesize(
    chunk: TraceChunk,
    accesses: int,
    instructions: int | None = None,
    line_size: int = 64,
    seed: int = 0,
) -> TraceChunk:
    """Measure ``chunk``'s profile and synthesize a new trace from it.

    The round-trip workhorse: stretch or shrink a measured execution
    while preserving its reuse behaviour.
    """
    from repro.reuse.model import empirical_profile

    instructions = instructions if instructions is not None else len(chunk)
    profile = empirical_profile(chunk, instructions, line_size)
    return synthesize_trace(profile, accesses, line_size=line_size, seed=seed)
