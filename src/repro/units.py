"""Size and address units used throughout the package.

The paper quotes cache sizes in megabytes (4 MB to 256 MB), line sizes in
bytes (64 B to 4096 B), and working-set sizes in megabytes.  All internal
arithmetic uses plain byte counts; this module provides the constants and
small helpers that keep call sites readable (``32 * MB`` instead of
``33554432``).
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

#: Dragonhead's supported last-level-cache size envelope (Section 3.1).
DRAGONHEAD_MIN_CACHE: int = 1 * MB
DRAGONHEAD_MAX_CACHE: int = 256 * MB

#: Dragonhead's supported cache-line size envelope (Section 3.1).
DRAGONHEAD_MIN_LINE: int = 64
DRAGONHEAD_MAX_LINE: int = 4096

#: Cache sizes swept in Figures 4-6 (4 MB to 256 MB, powers of two).
PAPER_CACHE_SWEEP: tuple[int, ...] = tuple(s * MB for s in (4, 8, 16, 32, 64, 128, 256))

#: Line sizes swept in Figure 7 (64 B to 4 KB, powers of two).
PAPER_LINE_SWEEP: tuple[int, ...] = (64, 128, 256, 512, 1024, 2048, 4096)


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def format_size(num_bytes: int | float) -> str:
    """Render a byte count the way the paper does (``64B``, ``512KB``, ``32MB``).

    >>> format_size(64)
    '64B'
    >>> format_size(32 * MB)
    '32MB'
    """
    num = float(num_bytes)
    for unit, name in ((GB, "GB"), (MB, "MB"), (KB, "KB")):
        if num >= unit:
            scaled = num / unit
            if scaled == int(scaled):
                return f"{int(scaled)}{name}"
            return f"{scaled:.1f}{name}"
    if num == int(num):
        return f"{int(num)}B"
    return f"{num:.1f}B"


def parse_size(text: str) -> int:
    """Parse a human-readable size string such as ``'32MB'`` or ``'64B'``.

    Inverse of :func:`format_size` for the exact-integer cases.

    >>> parse_size('32MB') == 32 * MB
    True
    """
    text = text.strip().upper()
    for suffix, unit in (("GB", GB), ("MB", MB), ("KB", KB), ("B", 1)):
        if text.endswith(suffix):
            return int(float(text[: -len(suffix)]) * unit)
    return int(text)


def line_number(address: int, line_size: int) -> int:
    """Return the cache-line index that ``address`` falls in."""
    return address // line_size


def align_down(address: int, granule: int) -> int:
    """Align ``address`` down to a multiple of ``granule``."""
    return address - (address % granule)
