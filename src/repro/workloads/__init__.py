"""The paper's eight workloads: kernels, memory models, calibration.

Each workload (SNP, SVM-RFE, RSEARCH, FIMI, PLSA, MDS, SHOT, VIEWTYPE)
is exposed as a :class:`~repro.workloads.base.Workload` that bundles:

* the *real kernel* — the instrumented mining algorithm from
  :mod:`repro.mining`, which emits genuine memory traces at reduced
  scale for the exact simulation path;
* the *memory model* — a calibrated
  :class:`~repro.workloads.models.WorkloadMemoryModel` that predicts
  paper-scale cache behaviour analytically (Figures 4-7, Table 2).

Use :func:`get_workload` / :func:`all_workloads` from
:mod:`repro.workloads.registry`.
"""

from repro.workloads.base import Workload
from repro.workloads.models import AccessComponent, WorkloadMemoryModel
from repro.workloads.registry import all_workloads, get_workload, WORKLOAD_NAMES

__all__ = [
    "Workload",
    "AccessComponent",
    "WorkloadMemoryModel",
    "get_workload",
    "all_workloads",
    "WORKLOAD_NAMES",
]
