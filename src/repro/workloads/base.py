"""The Workload abstraction: one paper workload, both evaluation paths.

A :class:`Workload` bundles everything the harness needs:

* the calibrated :class:`~repro.workloads.models.WorkloadMemoryModel`
  (paper-scale analytic path, Figures 4-7 / Table 2);
* the instrumented *kernel* — the real algorithm from
  :mod:`repro.mining` emitting genuine traces at reduced scale (exact
  path, used by the validation tests and the co-simulation examples);
* synthetic trace generation matching the model's component mixture
  (for exact-path runs bigger than the kernels can execute);
* the Table 1 metadata.

Thread scaling on the exact path approximates the Section 4.3 sharing
taxonomy through arena placement: category-A/B threads run over the
*same* address range (their primary structure is shared), category-C
threads get disjoint ranges (private working sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.core.softsdv import GuestWorkload
from repro.errors import ConfigurationError
from repro.trace.generators import (
    sequential_scan,
    Region,
    cyclic_scan,
    interleave_mix,
    pointer_chase,
    uniform_random,
)
from repro.trace.instrument import MemoryArena, TraceRecorder
from repro.trace.record import TraceChunk
from repro.trace.stream import chunk_stream
from repro.workloads.models import WorkloadMemoryModel

#: Arena bases: threads of shared-structure workloads start here...
SHARED_ARENA_BASE = 0x1000_0000
#: ...while private-working-set threads are spaced this far apart.
PRIVATE_THREAD_SPACING = 0x4000_0000

KernelFunction = Callable[[TraceRecorder, MemoryArena], object]


def _validate_repeats(repeats: int) -> None:
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")


def _repeated_stream(trace: TraceChunk, repeats: int) -> Iterator[TraceChunk]:
    """Stream ``trace`` end to end ``repeats`` times (lazy, no copies)."""
    for _ in range(repeats):
        yield from chunk_stream(trace)


@dataclass(frozen=True)
class KernelRun:
    """Result of one instrumented kernel execution."""

    workload: str
    result: object
    trace: TraceChunk
    instructions: int

    @property
    def accesses(self) -> int:
        return len(self.trace)

    @property
    def apki(self) -> float:
        """Accesses per 1000 instructions measured from the real kernel."""
        return 1000.0 * self.accesses / self.instructions if self.instructions else 0.0


@dataclass(frozen=True)
class Workload:
    """One of the paper's eight data-mining workloads."""

    name: str
    description: str
    category: str  # Section 4.3 taxonomy: A, B, or C
    model: WorkloadMemoryModel
    kernel_factory: Callable[[int, int, int], KernelFunction]
    table1_parameters: str = ""
    table1_dataset: str = ""

    # -- exact path: the real algorithm --------------------------------------

    def run_kernel(self, thread_id: int = 0, threads: int = 1, seed: int = 0) -> KernelRun:
        """Execute the instrumented mining kernel for one thread."""
        recorder = TraceRecorder()
        arena = MemoryArena(base=self._arena_base(thread_id))
        kernel = self.kernel_factory(thread_id, threads, seed)
        result = kernel(recorder, arena)
        return KernelRun(
            workload=self.name,
            result=result,
            trace=recorder.trace(),
            instructions=recorder.instruction_count,
        )

    def _arena_base(self, thread_id: int) -> int:
        if self.category == "C":
            return SHARED_ARENA_BASE + thread_id * PRIVATE_THREAD_SPACING
        # Categories A and B share the primary structure: same addresses.
        return SHARED_ARENA_BASE

    def kernel_guest(
        self, threads: int = 1, seed: int = 0, repeats: int = 1
    ) -> GuestWorkload:
        """A :class:`GuestWorkload` backed by real per-thread kernel traces.

        ``repeats`` replays each thread's kernel trace that many times
        back to back — the long-stream scaling knob sampled simulation
        needs to exercise traces orders of magnitude beyond one kernel
        invocation without paying for extra kernel runs.
        """
        _validate_repeats(repeats)

        def thread_streams(n: int) -> list:
            runs = [self.run_kernel(t, n, seed) for t in range(n)]
            return [_repeated_stream(r.trace, repeats) for r in runs]

        return GuestWorkload(
            name=self.name,
            thread_streams=thread_streams,
            instructions_per_access=self.model.instructions_per_access,
        )

    # -- exact path: model-shaped synthetic traces ---------------------------------

    #: Components whose (unscaled) footprint is at most this many bytes
    #: are filtered from synthetic FSB traffic — they live in the cores'
    #: private L1s and never reach the bus the emulator snoops.
    L1_FILTER_BYTES = 32 * 1024

    def synthetic_thread_trace(
        self,
        thread_id: int,
        threads: int,
        accesses: int,
        scale: float,
        seed: int = 0,
        line_size_hint: int = 64,
    ) -> TraceChunk:
        """Generate one thread's *FSB* trace from the model's components.

        The trace models what Dragonhead snoops: post-L1 traffic.  Hot
        components (footprint <= :data:`L1_FILTER_BYTES`) are filtered
        out, strided scans are emitted at line granularity (one bus
        transaction per line crossed), and components are weighted by
        their line-crossing rates — so working sets build up within
        simulatable trace lengths.

        ``scale`` shrinks every component footprint so the resulting
        working sets are simulatable exactly; MPKI-versus-capacity
        shape is preserved when cache sizes are scaled by the same
        factor (the down-scaling the validation tests rely on).
        """
        if not 0 < scale <= 1:
            raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
        rng = np.random.default_rng((seed * 1009 + thread_id) & 0x7FFFFFFF)
        chunks: list[TraceChunk] = []
        weights: list[float] = []
        shared_cursor = SHARED_ARENA_BASE
        private_cursor = SHARED_ARENA_BASE + (1 + thread_id) * PRIVATE_THREAD_SPACING
        write_fraction = 1.0 - self.model.read_fraction
        for index, component in enumerate(self._fsb_components()):
            region_bytes = max(line_size_hint * 4, int(component.region_bytes * scale))
            if component.sharing == "private":
                base = private_cursor
                private_cursor += region_bytes + 4096
            else:
                base = shared_cursor
                shared_cursor += region_bytes + 4096
            region = Region(base=base, size=region_bytes)
            pc = 0x400000 + index * 16
            stride = max(component.stride, line_size_hint)
            if component.pattern in ("stream", "fresh"):
                # Fresh data flowing past: a long forward scan that
                # never wraps within the sampled window.
                stream_region = Region(
                    base=region.base,
                    size=max(region.size, accesses * stride * 2),
                )
                chunk = sequential_scan(
                    stream_region, count=accesses, stride=stride,
                    write_fraction=write_fraction, rng=rng, pc=pc,
                )
                private_cursor = max(private_cursor, stream_region.end + 4096)
                shared_cursor = max(shared_cursor, stream_region.end + 4096)
            elif component.pattern == "cyclic":
                chunk = cyclic_scan(
                    region, passes=2, stride=stride,
                    write_fraction=write_fraction, rng=rng, pc=pc,
                )
            elif component.pattern == "random":
                chunk = uniform_random(
                    region, count=max(256, 2 * region_bytes // line_size_hint),
                    granule=line_size_hint,
                    write_fraction=write_fraction, rng=rng, pc=pc,
                )
            else:  # pointer
                chunk = pointer_chase(
                    region, count=max(256, 2 * region_bytes // line_size_hint),
                    node_size=line_size_hint,
                    write_fraction=write_fraction, rng=rng, pc=pc,
                )
            chunks.append(chunk)
            weights.append(component.crossing_apki(line_size_hint))
        return interleave_mix(chunks, weights, accesses, rng=rng)

    def _fsb_components(self):
        """Model components whose traffic reaches the front-side bus."""
        return [
            c
            for c in self.model.components
            if c.region_bytes > self.L1_FILTER_BYTES
        ]

    def fsb_instructions_per_access(self, line_size: int = 64) -> float:
        """Retired instructions represented by one FSB transaction.

        The synthetic trace carries only post-L1 line-crossing traffic;
        each of those transactions stands for ``1000 / (post-L1
        crossing rate)`` instructions of guest execution.
        """
        crossing = sum(c.crossing_apki(line_size) for c in self._fsb_components())
        return 1000.0 / crossing if crossing else 1.0

    def synthetic_guest(
        self,
        accesses_per_thread: int = 65536,
        scale: float = 1 / 256,
        seed: int = 0,
        repeats: int = 1,
    ) -> GuestWorkload:
        """A :class:`GuestWorkload` backed by model-shaped synthetic traces.

        ``repeats`` replays each thread's generated trace that many
        times back to back, scaling the stream length without scaling
        generation cost.
        """
        _validate_repeats(repeats)

        def thread_streams(n: int) -> list:
            return [
                _repeated_stream(
                    self.synthetic_thread_trace(t, n, accesses_per_thread, scale, seed),
                    repeats,
                )
                for t in range(n)
            ]

        return GuestWorkload(
            name=self.name,
            thread_streams=thread_streams,
            instructions_per_access=self.fsb_instructions_per_access(),
        )

    def guest_workload(self, source: str = "synthetic", **kwargs) -> GuestWorkload:
        """Convenience dispatcher: ``source`` is ``synthetic`` or ``kernel``."""
        if source == "synthetic":
            return self.synthetic_guest(**kwargs)
        if source == "kernel":
            return self.kernel_guest(**kwargs)
        raise ConfigurationError(f"unknown trace source {source!r}")
