"""FIMI: frequent-itemset mining with FP-growth."""

from __future__ import annotations

from repro.mining.datasets import transactions
from repro.mining.fpgrowth import fp_growth
from repro.workloads.base import Workload
from repro.workloads.profiles import CATEGORIES, PAPER_TABLE1, memory_model


def build() -> Workload:
    """The FIMI workload (Section 2.3): the FP-Zhu three-stage pipeline."""

    def kernel_factory(thread_id: int, threads: int, seed: int):
        def kernel(recorder, arena):
            # Category B: every thread mines a portion of the same tree
            # (shared dataset/seed); private conditional trees are the
            # per-thread increment.
            data = transactions(
                n_transactions=240, n_items=40, avg_length=6, seed=23
            )
            share = max(1, len(data) // max(1, threads))
            subset = data[thread_id * share : (thread_id + 1) * share] or data[:share]
            return fp_growth(subset, min_support=8, recorder=recorder, arena=arena)

        return kernel

    return Workload(
        name="FIMI",
        description="Frequent-itemset mining: first scan, FP-tree "
        "construction, and recursive FP-growth (Kosarak-like transactions).",
        category=CATEGORIES["FIMI"],
        model=memory_model("FIMI"),
        kernel_factory=kernel_factory,
        table1_parameters=PAPER_TABLE1["FIMI"][0],
        table1_dataset=PAPER_TABLE1["FIMI"][1],
    )
