"""MDS: multi-document summarization (graph ranking + MMR)."""

from __future__ import annotations

from repro.mining.summarize import traced_mds_kernel
from repro.workloads.base import Workload
from repro.workloads.profiles import CATEGORIES, PAPER_TABLE1, memory_model


def build() -> Workload:
    """The MDS workload (Section 2.5): query-biased ranking + MMR."""

    def kernel_factory(thread_id: int, threads: int, seed: int):
        def kernel(recorder, arena):
            # Category A: all threads iterate over the same similarity
            # matrix (identical dataset seed → identical addresses).
            return traced_mds_kernel(
                recorder,
                arena,
                n_documents=8,
                sentences_per_document=6,
                k=4,
                iterations=4,
                seed=31,
            )

        return kernel

    return Workload(
        name="MDS",
        description="Multi-document summarization: sentence-graph power "
        "iteration with query bias, then maximum-marginal-relevance selection.",
        category=CATEGORIES["MDS"],
        model=memory_model("MDS"),
        kernel_factory=kernel_factory,
        table1_parameters=PAPER_TABLE1["MDS"][0],
        table1_dataset=PAPER_TABLE1["MDS"][1],
    )
