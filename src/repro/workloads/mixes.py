"""Multiprogrammed workload mixes on one CMP.

The paper runs each workload alone across all cores, but CMP last-level
caches exist to be *shared* — consolidation (different applications on
different cores of one chip) is the natural follow-on study, and the
substrate supports it directly:

* :func:`mixed_guest` builds one :class:`GuestWorkload` whose cores are
  partitioned among several workloads (exact path);
* :func:`mixed_profile` composes the workloads' reuse profiles with
  instruction-share weights (model path), so mixed-LLC MPKI curves come
  from the same machinery as Figures 4-6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.softsdv import GuestWorkload
from repro.errors import ConfigurationError
from repro.reuse.histogram import ReuseProfile
from repro.trace.stream import chunk_stream
from repro.workloads.base import Workload


@dataclass(frozen=True)
class MixEntry:
    """One workload's share of the CMP."""

    workload: Workload
    cores: int

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"cores must be positive, got {self.cores}")


def mixed_guest(
    entries: list[MixEntry],
    accesses_per_thread: int = 65536,
    scale: float = 1 / 256,
    seed: int = 0,
) -> GuestWorkload:
    """A guest whose virtual cores are partitioned among workloads.

    Core ids are assigned in entry order: the first entry's workload
    occupies cores ``0 .. cores-1``, and so on.  Per-core instruction
    ratios follow each core's own workload.
    """
    if not entries:
        raise ConfigurationError("a mix needs at least one entry")
    total = sum(e.cores for e in entries)
    ratios: list[float] = []
    for entry in entries:
        ratios.extend(
            [entry.workload.fsb_instructions_per_access()] * entry.cores
        )

    def thread_streams(n: int):
        if n != total:
            raise ConfigurationError(
                f"mix defines {total} cores but {n} were requested"
            )
        streams = []
        core = 0
        for entry in entries:
            for local in range(entry.cores):
                trace = entry.workload.synthetic_thread_trace(
                    thread_id=core,
                    threads=entry.cores,
                    accesses=accesses_per_thread,
                    scale=scale,
                    seed=seed,
                )
                streams.append(chunk_stream(trace))
                core += 1
        return streams

    name = "+".join(f"{e.cores}x{e.workload.name}" for e in entries)
    return GuestWorkload(
        name=name,
        thread_streams=thread_streams,
        instructions_per_access=ratios,
    )


def mixed_profile(entries: list[MixEntry], line_size: int = 64) -> ReuseProfile:
    """The composed reuse profile of a heterogeneous mix.

    Each workload contributes its thread-scaled profile weighted by its
    share of retired instructions (cores are symmetric in issue rate to
    first order, so the share is the core fraction).
    """
    if not entries:
        raise ConfigurationError("a mix needs at least one entry")
    total_cores = sum(e.cores for e in entries)
    parts = []
    for entry in entries:
        weight = entry.cores / total_cores
        parts.append(
            entry.workload.model.profile(line_size, entry.cores).scaled(weight)
        )
    return parts[0].combine(*parts[1:])


def mixed_llc_mpki(
    entries: list[MixEntry], cache_size: int, line_size: int = 64
) -> float:
    """Shared-LLC MPKI of the mix (per 1000 aggregate instructions)."""
    return mixed_profile(entries, line_size).miss_rate(cache_size / line_size)
