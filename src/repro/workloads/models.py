"""Phase-based analytic workload memory models.

A workload's steady-state memory behaviour is modelled as a mixture of
:class:`AccessComponent` s, each describing one data structure and how
it is accessed:

* ``cyclic`` — repeated in-order traversals with a constant byte stride
  (streaming arrays, DP rows, frame buffers).  Under LRU every reuse
  has stack distance equal to the structure's footprint, so the
  miss-versus-capacity curve is a step at the working-set size; and
  because consecutive elements share cache lines, the *line-crossing*
  access rate — hence the MPKI when the structure does not fit — scales
  as ``stride / line_size``: the near-linear Figure 7 improvement.
* ``random`` — uniform references into a region (hash probes, scattered
  matrix reads).  The stack distance is uniform over the footprint, so
  misses decline linearly with capacity; footprint lines and cache
  lines scale together with line size, so these accesses gain nothing
  from longer lines: the "not that significant" Figure 7 cases.
* ``pointer`` — like ``random`` but not detectable by a stride
  prefetcher (linked traversals); used by the Figure 8 coverage model.

Components are ``shared`` (all threads reference one instance) or
``private`` (each thread owns a copy).  Thread scaling follows the
Section 4.3 taxonomy via :mod:`repro.reuse.interleave`: shared profiles
pass through unchanged, private profiles dilate by the thread count.

Rates are in accesses per 1000 instructions.  ``apki64`` is the
component's *line-crossing* rate at 64-byte lines — the quantity cache
miss rates are proportional to — from which the raw element-access rate
is derived via the stride.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import CalibrationError, ConfigurationError
from repro.reuse.histogram import ReuseProfile
from repro.reuse.interleave import dilate_private
from repro.units import KB, MB

PATTERNS = ("cyclic", "random", "pointer", "stream", "fresh")
SHARINGS = ("shared", "private")

#: Fraction of a cyclic/pointer component's reuse mass spread around the
#: nominal working set (phase drift, competing structures); the rest
#: sits exactly at the footprint.  The spread spans 0.6x-1.4x of the
#: footprint, so curves decline gradually near the knee the way the
#: paper's measured curves do, instead of as pure steps.
SMOOTHING = 0.4
SPREAD_LOW = 0.6
SPREAD_HIGH = 1.4

#: Private working sets at or below this size are re-warmed within one
#: DEX scheduling quantum: the platform time-slices virtual cores for
#: milliseconds at a time, so a small per-thread structure is reused
#: thousands of times inside its own slice and its reuse distances are
#: NOT dilated by other threads' traffic.  Only private structures whose
#: reuse period exceeds a slice (bigger footprints) interleave with the
#: other cores' data in the shared LLC.
SLICE_RESIDENT_BYTES = 512 * KB


@dataclass(frozen=True)
class AccessComponent:
    """One data structure and its access pattern.

    Attributes:
        name: label (used in reports and prefetch attribution).
        pattern: ``cyclic`` / ``random`` / ``pointer`` (see module docs).
        region_bytes: footprint of one instance of the structure.
        apki64: line-crossing accesses per 1000 instructions at 64 B
            lines, single-threaded.
        stride: byte stride of successive accesses (cyclic only).
        sharing: ``shared`` or ``private`` (per-thread copies).
    """

    name: str
    pattern: str
    region_bytes: float
    apki64: float
    stride: int = 8
    sharing: str = "shared"

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ConfigurationError(f"unknown pattern {self.pattern!r}")
        if self.sharing not in SHARINGS:
            raise ConfigurationError(f"unknown sharing {self.sharing!r}")
        if self.region_bytes <= 0 or self.apki64 < 0 or self.stride <= 0:
            raise ConfigurationError(
                f"component {self.name!r}: region/stride must be positive, rate non-negative"
            )

    # -- rate accounting ----------------------------------------------------

    @property
    def raw_apki(self) -> float:
        """Element accesses per 1000 instructions.

        For a strided scan with stride < 64, several consecutive element
        accesses fall on each 64 B line, so the element rate exceeds the
        line-crossing rate by 64/stride.
        """
        if self.pattern in ("cyclic", "stream"):
            return self.apki64 * max(1.0, 64.0 / self.stride)
        return self.apki64  # random / pointer / fresh: one line per access

    def crossing_apki(self, line_size: int) -> float:
        """Line-crossing accesses per 1000 instructions at ``line_size``."""
        if self.pattern in ("cyclic", "stream"):
            return self.raw_apki * min(1.0, self.stride / line_size)
        # Random/pointer references land on a fresh line every time.
        return self.apki64

    @property
    def prefetchable(self) -> bool:
        """Whether a stride prefetcher can cover this component's misses."""
        return self.pattern in ("cyclic", "stream")

    # -- reuse profile ------------------------------------------------------------

    def profile(
        self,
        line_size: int = 64,
        threads: int = 1,
        *,
        smoothing: float | None = None,
        slice_resident_bytes: float | None = None,
    ) -> ReuseProfile:
        """Stack-distance profile of this component at a line size/thread count.

        The keyword overrides exist for ablation studies: ``smoothing``
        replaces the module-level :data:`SMOOTHING` (0 gives pure step
        responses), ``slice_resident_bytes`` replaces
        :data:`SLICE_RESIDENT_BYTES` (0 dilates every private structure).
        """
        if line_size <= 0 or threads <= 0:
            raise ConfigurationError("line_size and threads must be positive")
        smoothing = SMOOTHING if smoothing is None else smoothing
        if not 0 <= smoothing < 1:
            raise ConfigurationError(f"smoothing must be in [0, 1), got {smoothing}")
        slice_resident = (
            SLICE_RESIDENT_BYTES if slice_resident_bytes is None else slice_resident_bytes
        )
        footprint_lines = max(1.0, self.region_bytes / line_size)
        crossing = self.crossing_apki(line_size)
        same_line = max(0.0, self.raw_apki - crossing)
        if self.pattern in ("stream", "fresh"):
            # Fresh data flowing past: never reused at any capacity.
            # ``stream`` is sequential (gains from longer lines);
            # ``fresh`` is scattered (line-size neutral).
            reuse = ReuseProfile.streaming(crossing)
        elif self.pattern == "random":
            reuse = ReuseProfile.uniform(footprint_lines, crossing)
        else:  # cyclic / pointer: working set at the footprint + spread
            reuse = ReuseProfile.point(footprint_lines, crossing * (1.0 - smoothing))
            if smoothing > 0:
                reuse = reuse.combine(
                    ReuseProfile.uniform_range(
                        SPREAD_LOW * footprint_lines,
                        SPREAD_HIGH * footprint_lines,
                        crossing * smoothing,
                    )
                )
        if self.sharing == "private" and self.region_bytes > slice_resident:
            reuse = dilate_private(reuse, threads)
        if same_line > 0:
            # Accesses that stay within the previously touched line hit
            # at any capacity: distance below one line.
            reuse = reuse.combine(ReuseProfile.point(0.5, same_line))
        return reuse


class WorkloadMemoryModel:
    """The composed memory model of one workload.

    Args:
        name: workload name.
        components: the calibrated component mixture.
        mem_fraction: fraction of instructions that reference memory
            (Table 2's "% Memory Instructions").
        read_fraction: fraction of memory references that are reads.
    """

    def __init__(
        self,
        name: str,
        components: Sequence[AccessComponent],
        mem_fraction: float,
        read_fraction: float,
    ) -> None:
        if not 0 < mem_fraction <= 1 or not 0 < read_fraction <= 1:
            raise ConfigurationError("fractions must be in (0, 1]")
        self.name = name
        self.components = tuple(components)
        self.mem_fraction = mem_fraction
        self.read_fraction = read_fraction
        budget = self.apki
        used = sum(c.raw_apki for c in self.components)
        if used > budget * 1.02:
            raise CalibrationError(
                f"{name}: component access rates ({used:.1f}/1000 inst) exceed "
                f"the memory-instruction budget ({budget:.1f}/1000 inst)"
            )

    @property
    def apki(self) -> float:
        """Total memory accesses per 1000 instructions (Table 2 column)."""
        return self.mem_fraction * 1000.0

    @property
    def instructions_per_access(self) -> float:
        return 1.0 / self.mem_fraction

    def profile(self, line_size: int = 64, threads: int = 1, **overrides) -> ReuseProfile:
        """The composed reuse profile at a line size and thread count.

        ``overrides`` (``smoothing``, ``slice_resident_bytes``) are
        forwarded to every component for ablation studies.
        """
        profiles = [c.profile(line_size, threads, **overrides) for c in self.components]
        if not profiles:
            return ReuseProfile.empty()
        return profiles[0].combine(*profiles[1:])

    # -- cache metrics -------------------------------------------------------

    def llc_mpki(
        self, cache_size: int, line_size: int = 64, threads: int = 1, **overrides
    ) -> float:
        """Shared-LLC misses per 1000 instructions (the figures' y-axis)."""
        return self.profile(line_size, threads, **overrides).miss_rate(
            cache_size / line_size
        )

    def dl1_mpki(self, l1_size: int = 8 * KB, line_size: int = 64) -> float:
        """Single-thread L1 MPKI at the Table 2 machine's 8 KB L1."""
        return self.profile(line_size, 1).miss_rate(l1_size / line_size)

    def dl2_mpki(self, l2_size: int = 512 * KB, line_size: int = 64) -> float:
        """Single-thread L2 MPKI at the Table 2 machine's 512 KB L2."""
        return self.profile(line_size, 1).miss_rate(l2_size / line_size)

    def footprint_bytes(self, threads: int = 1) -> float:
        """Resident working-set estimate across all components.

        Never-reused traffic (``stream``/``fresh``) flows past without
        being part of the resident set, so it is excluded.
        """
        total = 0.0
        for c in self.components:
            if c.pattern in ("stream", "fresh"):
                continue
            multiplier = threads if c.sharing == "private" else 1
            total += c.region_bytes * multiplier
        return total

    # -- prefetch attribution --------------------------------------------------

    def prefetchable_miss_fraction(
        self, cache_size: int = 512 * KB, line_size: int = 64, threads: int = 1
    ) -> float:
        """Fraction of misses at ``cache_size`` from stride-detectable streams.

        Drives the Figure 8 coverage model: only ``cyclic`` components
        are covered by a stride prefetcher.
        """
        capacity_lines = cache_size / line_size
        covered = 0.0
        total = 0.0
        for component in self.components:
            miss = component.profile(line_size, threads).miss_rate(capacity_lines)
            total += miss
            if component.prefetchable:
                covered += miss
        return covered / total if total else 0.0


def hot_component(name: str, used_apki: float, total_apki: float, region_bytes: float = 4 * KB) -> AccessComponent:
    """The residual hot working set (stack, locals, hot tables).

    Table 2's DL1 column fixes how many accesses per 1000 instructions
    must *hit* an 8 KB L1; everything the explicitly calibrated
    components do not use is assigned to a small cyclic region that hits
    every level.
    """
    remainder = total_apki - used_apki
    if remainder <= 0:
        raise CalibrationError(
            f"{name}: no access budget left for the hot set "
            f"(used {used_apki:.1f} of {total_apki:.1f})"
        )
    return AccessComponent(
        name=f"{name}-hot",
        pattern="cyclic",
        region_bytes=region_bytes,
        apki64=remainder / 8.0,  # stride 8 → raw = apki64 * 8
        stride=8,
        sharing="private",
    )
