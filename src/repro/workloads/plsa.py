"""PLSA: parallel linear-space Smith-Waterman sequence alignment."""

from __future__ import annotations

from repro.mining.align import traced_plsa_kernel
from repro.workloads.base import Workload
from repro.workloads.profiles import CATEGORIES, PAPER_TABLE1, memory_model


def build() -> Workload:
    """The PLSA workload (Section 2.4): wavefront-parallel local alignment."""

    def kernel_factory(thread_id: int, threads: int, seed: int):
        def kernel(recorder, arena):
            # The parallel algorithm blocks each DP row across threads;
            # the sequences are shared, row slices are private.
            return traced_plsa_kernel(
                recorder,
                arena,
                length=192,
                threads=threads,
                thread_id=thread_id,
                seed=29,
            )

        return kernel

    return Workload(
        name="PLSA",
        description="Smith-Waterman local alignment of two long DNA "
        "sequences with the linear-space parallel algorithm.",
        category=CATEGORIES["PLSA"],
        model=memory_model("PLSA"),
        kernel_factory=kernel_factory,
        table1_parameters=PAPER_TABLE1["PLSA"][0],
        table1_dataset=PAPER_TABLE1["PLSA"][1],
    )
