"""Paper-reported values and per-workload model calibration.

This module is the single home of every number taken from the paper:

* :data:`PAPER_TABLE1` — input parameters and dataset sizes (Table 1);
* :data:`PAPER_TABLE2` — single-thread workload characteristics
  (Table 2);
* :data:`WORKING_SETS` — the working-set sizes the paper reads off
  Figures 4-6 for SCMP/MCMP/LCMP;
* :data:`CATEGORIES` — the Section 4.3 sharing taxonomy;
* :data:`LINE_RESPONDERS` — the workloads Figure 7 singles out for
  near-linear miss reduction with larger lines;
* the calibrated :class:`AccessComponent` mixtures that make the
  analytic models reproduce those targets.

Calibration recipe (documented in DESIGN.md §5): per workload, the
component line-crossing rates are anchored to Table 2 — components
whose footprint exceeds 512 KB carry exactly the DL2 MPKI, components
between 8 KB and 512 KB carry DL1−DL2, and the residual access budget
goes to a hot set that always hits — while component footprints are the
Figure 4-6 working sets and the pattern mix (cyclic vs random) follows
Figure 7's spatial-locality findings.  CPI parameters (``base_cpi``,
``exposure``) are fitted to Table 2's IPC column and documented as
calibrated, not predicted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import KB, MB
from repro.workloads.models import AccessComponent, WorkloadMemoryModel, hot_component

WORKLOAD_NAMES = ("SNP", "SVM-RFE", "RSEARCH", "FIMI", "PLSA", "MDS", "SHOT", "VIEWTYPE")


@dataclass(frozen=True)
class Table2Row:
    """One row of the paper's Table 2."""

    ipc: float
    instructions_billions: float
    mem_instruction_pct: float
    mem_read_pct: float
    dl1_accesses_pki: float
    dl1_mpki: float
    dl2_mpki: float

    @property
    def mem_fraction(self) -> float:
        return self.mem_instruction_pct / 100.0

    @property
    def read_fraction_of_mem(self) -> float:
        """Reads as a fraction of memory instructions (paper: 56-96%)."""
        return self.mem_read_pct / self.mem_instruction_pct


PAPER_TABLE2: dict[str, Table2Row] = {
    "SNP": Table2Row(0.12, 71.26, 50.75, 37.41, 508, 12.01, 7.77),
    "SVM-RFE": Table2Row(0.87, 37.02, 45.14, 43.64, 451, 61.40, 2.96),
    "MDS": Table2Row(0.06, 217.8, 49.34, 43.46, 493, 51.00, 18.95),
    "SHOT": Table2Row(0.61, 15.01, 53.85, 30.66, 538, 18.86, 4.07),
    "FIMI": Table2Row(0.51, 50.28, 47.10, 35.74, 471, 15.99, 3.76),
    "VIEWTYPE": Table2Row(0.49, 33.61, 49.02, 36.86, 490, 31.77, 3.56),
    "PLSA": Table2Row(1.08, 356.8, 83.10, 46.66, 831, 4.60, 0.18),
    "RSEARCH": Table2Row(0.62, 53.9, 42.3, 33.2, 423, 10.65, 0.72),
}

PAPER_TABLE1: dict[str, tuple[str, str]] = {
    "SNP": ("600k sequences, each with length 50", "30MB, real datasets from HGBASE"),
    "SVM-RFE": ("253 tissue samples, each with 15k genes", "30MB, real micro-array dataset on Cancer"),
    "RSEARCH": ("100MB database, search sequence size 100", "100MB, real datasets from Gene bank"),
    "FIMI": ("990k transactions and mini-support=800", "30MB, real dataset Kosarak"),
    "PLSA": ("two sequences in 30k length", "60KB, real DNA sequences from Gene bank"),
    "MDS": ("220 pages with 25k sequences", "4.1M, synthetic dataset from web search document"),
    "SHOT": ("10-min MPEG-2 video", "200MB, 720x576 resolution"),
    "VIEWTYPE": ("10-min MPEG-2 video", "200MB, 720x576 resolution"),
}

#: Section 4.3's sharing taxonomy: A = one shared primary structure,
#: B = shared structure + small private per-thread data, C = mostly
#: private per-thread working sets.
CATEGORIES: dict[str, str] = {
    "SNP": "A",
    "SVM-RFE": "A",
    "MDS": "A",
    "PLSA": "A",
    "FIMI": "B",
    "RSEARCH": "B",
    "SHOT": "C",
    "VIEWTYPE": "C",
}

#: Working-set sizes (bytes) the paper reads off Figures 4-6, per CMP.
#: SNP has two working sets on SCMP; MDS exceeds every simulated size.
WORKING_SETS: dict[str, dict[int, tuple[int, ...]]] = {
    "SNP": {8: (16 * MB, 128 * MB), 16: (16 * MB, 128 * MB), 32: (16 * MB, 128 * MB)},
    "SVM-RFE": {8: (4 * MB,), 16: (4 * MB,), 32: (4 * MB,)},
    "PLSA": {8: (4 * MB,), 16: (4 * MB,), 32: (4 * MB,)},
    "RSEARCH": {8: (4 * MB,), 16: (8 * MB,), 32: (16 * MB,)},
    "FIMI": {8: (16 * MB,), 16: (16 * MB,), 32: (32 * MB,)},
    "SHOT": {8: (32 * MB,), 16: (64 * MB,), 32: (128 * MB,)},
    "VIEWTYPE": {8: (16 * MB,), 16: (32 * MB,), 32: (64 * MB,)},
    "MDS": {8: (300 * MB,), 16: (300 * MB,), 32: (300 * MB,)},
}

#: Figure 7: workloads with near-linear miss reduction from 64B→256B.
LINE_RESPONDERS = ("SHOT", "MDS", "SNP", "SVM-RFE")

#: Figure 8: workloads whose *parallel* (16-thread) runs gain more from
#: prefetching than serial runs, and the two bandwidth-bound exceptions.
PREFETCH_PARALLEL_WINNERS = ("VIEWTYPE", "FIMI", "PLSA", "RSEARCH", "SHOT", "SVM-RFE")
PREFETCH_SERIAL_WINNERS = ("SNP", "MDS")


@dataclass(frozen=True)
class CpiParameters:
    """Calibrated CPI-stack parameters (see module docstring)."""

    base_cpi: float
    exposure: float  # fraction of miss latency not hidden by MLP/OoO

    #: Table 2 machine latencies (cycles): L2 hit and memory access on a
    #: NetBurst-era system with a loaded front-side bus.


L2_LATENCY = 18.0
MEMORY_LATENCY = 700.0

CPI_PARAMETERS: dict[str, CpiParameters] = {
    # Fitted so the CPI stack reproduces Table 2's IPC given the paper's
    # DL1/DL2 miss rates; exposure < 1 reflects overlap (streaming
    # workloads hide most of their miss latency).
    "SNP": CpiParameters(base_cpi=2.80, exposure=1.00),
    "SVM-RFE": CpiParameters(base_cpi=0.50, exposure=0.21),
    "MDS": CpiParameters(base_cpi=2.80, exposure=1.00),
    "SHOT": CpiParameters(base_cpi=0.70, exposure=0.30),
    "FIMI": CpiParameters(base_cpi=1.00, exposure=0.34),
    "VIEWTYPE": CpiParameters(base_cpi=1.00, exposure=0.35),
    "PLSA": CpiParameters(base_cpi=0.80, exposure=0.60),
    "RSEARCH": CpiParameters(base_cpi=1.30, exposure=0.46),
}


def _components(name: str) -> list[AccessComponent]:
    """The calibrated component mixture of one workload (no hot set).

    Per workload: a ``stream`` floor (fresh data flowing past, which
    keeps large-cache MPKI non-zero and carries line-size gains), the
    big structures whose footprints are the Figure 4-6 working sets,
    and an L2-resident component carrying Table 2's DL1−DL2 rate.
    """
    if name == "SNP":
        # Bayesian-network hill climbing over the 600k x 50 genotype
        # matrix: two shared working sets (counting caches at ~16 MB,
        # the full matrix at ~128 MB), column scans giving strong
        # spatial locality (Figure 7 responder).
        return [
            AccessComponent("snp-stream", "stream", 16 * MB, 0.40, stride=8),
            AccessComponent("snp-counts", "cyclic", 15 * MB, 4.20, stride=8),
            AccessComponent("snp-matrix", "cyclic", 120 * MB, 2.40, stride=8),
            AccessComponent("snp-index", "random", 15 * MB, 0.77),
            AccessComponent("snp-l2", "random", 128 * KB, 12.01 - 7.77),
        ]
    if name == "SVM-RFE":
        # Data-blocked kernel-matrix re-scans: a 4 MB shared active set
        # (the paper footnotes blocking as why it differs from prior
        # work), streamed with wide strides.
        return [
            AccessComponent("svm-stream", "stream", 4 * MB, 0.20, stride=8),
            AccessComponent("svm-active", "cyclic", 3.7 * MB, 2.30, stride=8),
            AccessComponent("svm-alpha", "random", 3.7 * MB, 0.46),
            AccessComponent("svm-tile", "cyclic", 256 * KB, 61.40 - 2.96, stride=32),
        ]
    if name == "MDS":
        # Query-biased ranking over a 300 MB sparse matrix: streamed
        # with constant stride each power iteration (no simulated cache
        # holds it → the flat Figure 4 curve), plus scattered index
        # lookups.
        return [
            AccessComponent("mds-matrix", "cyclic", 300 * MB, 17.00, stride=8),
            AccessComponent("mds-index", "random", 300 * MB, 1.95),
            AccessComponent("mds-l2", "random", 256 * KB, 51.00 - 18.95),
        ]
    if name == "SHOT":
        # Video streaming in (never reused) plus ~3 MB of private frame
        # state per thread: the paper's category-C example with ~4 MB
        # per thread and near-linear Figure 7 gains.
        return [
            AccessComponent("shot-stream", "stream", 4 * MB, 2.20, stride=8, sharing="private"),
            AccessComponent("shot-frames", "cyclic", 2.6 * MB, 1.30, stride=8, sharing="private"),
            AccessComponent("shot-hist", "random", 800 * KB, 0.57, sharing="private"),
            AccessComponent("shot-l2", "cyclic", 128 * KB, 18.86 - 4.07, stride=16, sharing="private"),
        ]
    if name == "FIMI":
        # FP-growth: a big shared read-only FP-tree walked by pointer
        # chasing, streaming transaction input, and private conditional
        # trees per thread (category B).
        return [
            AccessComponent("fimi-stream", "stream", 13 * MB, 0.25, stride=8),
            AccessComponent("fimi-fresh", "fresh", 13 * MB, 0.45),
            AccessComponent("fimi-tree", "pointer", 12 * MB, 2.80),
            AccessComponent("fimi-private", "random", 1 * MB, 0.56, sharing="private"),
            AccessComponent("fimi-l2", "random", 128 * KB, 15.99 - 3.76),
        ]
    if name == "VIEWTYPE":
        # Frame input streams in; segmentation masks/labels are private
        # per-thread state revisited with poor spatial order (the
        # wide-stride scan), so Figure 7 gains are modest.
        return [
            AccessComponent("view-stream", "stream", 2 * MB, 1.00, stride=8, sharing="private"),
            AccessComponent("view-frames", "cyclic", 1.7 * MB, 2.30, stride=128, sharing="private"),
            AccessComponent("view-labels", "random", 720 * KB, 0.56, sharing="private"),
            AccessComponent("view-l2", "random", 192 * KB, 31.77 - 3.56, sharing="private"),
        ]
    if name == "PLSA":
        # Smith-Waterman wavefront: tiny rolling rows (almost everything
        # hits), a modest shared sequence window, trivial private state.
        return [
            AccessComponent("plsa-stream", "stream", 4 * MB, 0.02, stride=8),
            AccessComponent("plsa-fresh", "fresh", 4 * MB, 0.03),
            AccessComponent("plsa-sequences", "cyclic", 3.6 * MB, 0.10, stride=8),
            AccessComponent("plsa-scatter", "random", 3.6 * MB, 0.03),
            AccessComponent("plsa-private", "random", 48 * KB, 0.03, sharing="private"),
            AccessComponent("plsa-rows", "cyclic", 64 * KB, (4.60 - 0.18) - 0.03, stride=32),
        ]
    if name == "RSEARCH":
        # CYK database scan: the shared database streams forward, each
        # thread re-reads a window of it and owns a private DP chart
        # (category B: working set 4→8→16 MB as cores scale).
        return [
            AccessComponent("rsearch-stream", "stream", 2 * MB, 0.08, stride=8),
            AccessComponent("rsearch-fresh", "fresh", 2 * MB, 0.14),
            AccessComponent("rsearch-db", "cyclic", 1.4 * MB, 0.50, stride=8),
            AccessComponent("rsearch-chart", "random", 560 * KB, 0.20, sharing="private"),
            AccessComponent("rsearch-l2", "random", 128 * KB, 10.65 - 0.72),
        ]
    raise KeyError(f"unknown workload {name!r}")


def memory_model(name: str) -> WorkloadMemoryModel:
    """Build the calibrated memory model for ``name``."""
    row = PAPER_TABLE2[name]
    components = _components(name)
    used = sum(c.raw_apki for c in components)
    components.append(hot_component(name, used, row.dl1_accesses_pki))
    return WorkloadMemoryModel(
        name=name,
        components=components,
        mem_fraction=row.mem_fraction,
        read_fraction=row.read_fraction_of_mem,
    )
