"""Workload registry: name → built Workload."""

from __future__ import annotations

from functools import lru_cache

from repro.workloads import fimi, mds, plsa, rsearch, shot, snp, svmrfe, viewtype
from repro.workloads.base import Workload
from repro.workloads.profiles import WORKLOAD_NAMES

_BUILDERS = {
    "SNP": snp.build,
    "SVM-RFE": svmrfe.build,
    "RSEARCH": rsearch.build,
    "FIMI": fimi.build,
    "PLSA": plsa.build,
    "MDS": mds.build,
    "SHOT": shot.build,
    "VIEWTYPE": viewtype.build,
}


@lru_cache(maxsize=None)
def get_workload(name: str) -> Workload:
    """Return the named workload (case-insensitive; see WORKLOAD_NAMES)."""
    key = name.upper()
    try:
        return _BUILDERS[key]()
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(WORKLOAD_NAMES)}"
        ) from None


def all_workloads() -> list[Workload]:
    """All eight workloads in the paper's Table 1 order."""
    return [get_workload(name) for name in WORKLOAD_NAMES]
