"""RSEARCH: RNA homolog search by SCFG/CYK database scanning."""

from __future__ import annotations

from repro.mining.scfg import traced_rsearch_kernel
from repro.workloads.base import Workload
from repro.workloads.profiles import CATEGORIES, PAPER_TABLE1, memory_model


def build() -> Workload:
    """The RSEARCH workload (Section 2.2): CYK scans over a database."""

    def kernel_factory(thread_id: int, threads: int, seed: int):
        def kernel(recorder, arena):
            # Category B: the database is shared; each thread scans its
            # own slice (same addresses, different offsets) and owns a
            # private CYK chart.
            length = 360
            slice_length = max(64, length // max(1, threads))
            return traced_rsearch_kernel(
                recorder,
                arena,
                database_length=slice_length,
                window=16,
                step=8,
                seed=13,
            )

        return kernel

    return Workload(
        name="RSEARCH",
        description="RNA secondary-structure homolog search: CYK decoding of "
        "a stochastic context-free grammar over a sequence database.",
        category=CATEGORIES["RSEARCH"],
        model=memory_model("RSEARCH"),
        kernel_factory=kernel_factory,
        table1_parameters=PAPER_TABLE1["RSEARCH"][0],
        table1_dataset=PAPER_TABLE1["RSEARCH"][1],
    )
