"""SHOT: video shot-boundary detection."""

from __future__ import annotations

from repro.mining.video import traced_shot_kernel
from repro.workloads.base import Workload
from repro.workloads.profiles import CATEGORIES, PAPER_TABLE1, memory_model


def build() -> Workload:
    """The SHOT workload (Section 2.6): 48-bin RGB histogram + pixel diff."""

    def kernel_factory(thread_id: int, threads: int, seed: int):
        def kernel(recorder, arena):
            # Category C: each thread processes its own frame span —
            # disjoint private buffers (the arena bases are spaced per
            # thread by the Workload layer).
            return traced_shot_kernel(
                recorder, arena, n_frames=16, height=20, width=24, seed=37 + thread_id
            )

        return kernel

    return Workload(
        name="SHOT",
        description="Shot-boundary detection on MPEG-2-like video: 48-bin "
        "RGB histograms with a pixel-wise difference supplement.",
        category=CATEGORIES["SHOT"],
        model=memory_model("SHOT"),
        kernel_factory=kernel_factory,
        table1_parameters=PAPER_TABLE1["SHOT"][0],
        table1_dataset=PAPER_TABLE1["SHOT"][1],
    )
