"""SNP: Bayesian-network structure learning over genotype data."""

from __future__ import annotations

from repro.mining.bayesnet import traced_snp_kernel
from repro.workloads.base import Workload
from repro.workloads.profiles import CATEGORIES, PAPER_TABLE1, memory_model


def build() -> Workload:
    """The SNP workload (Section 2.1): hill-climbing BN learning."""

    def kernel_factory(thread_id: int, threads: int, seed: int):
        def kernel(recorder, arena):
            # All threads search the same genotype matrix (category A);
            # each explores from a different operation ordering.
            return traced_snp_kernel(
                recorder,
                arena,
                n_sequences=120,
                length=10,
                seed=7,  # shared dataset: identical addresses across threads
            )

        return kernel

    return Workload(
        name="SNP",
        description="Bayesian-network structure learning on SNP genotype "
        "sequences via hill climbing (HGBASE-like data).",
        category=CATEGORIES["SNP"],
        model=memory_model("SNP"),
        kernel_factory=kernel_factory,
        table1_parameters=PAPER_TABLE1["SNP"][0],
        table1_dataset=PAPER_TABLE1["SNP"][1],
    )
