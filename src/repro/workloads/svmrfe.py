"""SVM-RFE: support-vector classification with recursive feature elimination."""

from __future__ import annotations

from repro.mining.svm import traced_rfe_kernel
from repro.workloads.base import Workload
from repro.workloads.profiles import CATEGORIES, PAPER_TABLE1, memory_model


def build() -> Workload:
    """The SVM-RFE workload (Section 2.2): gene selection on micro-arrays."""

    def kernel_factory(thread_id: int, threads: int, seed: int):
        def kernel(recorder, arena):
            # Category A: threads share the expression matrix; the gene
            # blocks they train on differ, modelled by per-thread seeds
            # over an identical dataset layout.
            return traced_rfe_kernel(
                recorder, arena, samples=20, genes=64, keep=6, seed=11
            )

        return kernel

    return Workload(
        name="SVM-RFE",
        description="Linear SVM training with recursive feature elimination "
        "on gene-expression data (cancer micro-array-like).",
        category=CATEGORIES["SVM-RFE"],
        model=memory_model("SVM-RFE"),
        kernel_factory=kernel_factory,
        table1_parameters=PAPER_TABLE1["SVM-RFE"][0],
        table1_dataset=PAPER_TABLE1["SVM-RFE"][1],
    )
