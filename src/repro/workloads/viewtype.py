"""VIEWTYPE: sports-video view-type classification."""

from __future__ import annotations

from repro.mining.video import traced_viewtype_kernel
from repro.workloads.base import Workload
from repro.workloads.profiles import CATEGORIES, PAPER_TABLE1, memory_model


def build() -> Workload:
    """The VIEWTYPE workload (Section 2.6): dominant-color playfield analysis."""

    def kernel_factory(thread_id: int, threads: int, seed: int):
        def kernel(recorder, arena):
            # Category C: per-thread frame spans, disjoint address ranges.
            return traced_viewtype_kernel(
                recorder, arena, n_frames=10, height=20, width=24, seed=37 + thread_id
            )

        return kernel

    return Workload(
        name="VIEWTYPE",
        description="View-type classification (global/medium/close-up/out "
        "of view) via HSV dominant-color playfield segmentation and "
        "connected-component analysis.",
        category=CATEGORIES["VIEWTYPE"],
        model=memory_model("VIEWTYPE"),
        kernel_factory=kernel_factory,
        table1_parameters=PAPER_TABLE1["VIEWTYPE"][0],
        table1_dataset=PAPER_TABLE1["VIEWTYPE"][1],
    )
