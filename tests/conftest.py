"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.generators import Region, cyclic_scan, uniform_random
from repro.trace.record import TraceChunk


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_region() -> Region:
    return Region(base=0x1000_0000, size=64 * 1024)


@pytest.fixture
def mixed_trace(rng, small_region) -> TraceChunk:
    """A deterministic trace mixing a scan and random probes."""
    scan = cyclic_scan(small_region, passes=2, stride=8, rng=rng)
    probes = uniform_random(
        Region(base=0x2000_0000, size=32 * 1024), count=4096, rng=rng
    )
    return TraceChunk.concatenate([scan[:4096], probes, scan[4096:8192]])
