"""Tests for Hirschberg linear-space global alignment."""

import numpy as np
import pytest

from repro.mining.align import hirschberg_alignment, nw_score
from repro.mining.datasets import dna_pair


def brute_force_nw(a, b, match=2, mismatch=-1, gap=-1):
    n, m = len(a), len(b)
    h = np.zeros((n + 1, m + 1), dtype=np.int64)
    h[:, 0] = np.arange(n + 1) * gap
    h[0, :] = np.arange(m + 1) * gap
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            h[i, j] = max(
                h[i - 1, j - 1] + (match if a[i - 1] == b[j - 1] else mismatch),
                h[i - 1, j] + gap,
                h[i, j - 1] + gap,
            )
    return int(h[n, m])


class TestNWScore:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 4, size=25, dtype=np.uint8)
        b = rng.integers(0, 4, size=30, dtype=np.uint8)
        assert nw_score(a, b) == brute_force_nw(a, b)

    def test_identical_sequences(self):
        a = np.array([0, 1, 2, 3], dtype=np.uint8)
        assert nw_score(a, a) == 8


class TestHirschberg:
    @pytest.mark.parametrize("seed", [1, 2, 5, 8])
    def test_score_is_optimal(self, seed):
        a, b = dna_pair(length=48, divergence=0.15, seed=seed)
        score, _ = hirschberg_alignment(a, b)
        assert score == nw_score(a, b)

    def test_alignment_structure(self):
        a, b = dna_pair(length=40, divergence=0.1, seed=3)
        _, pairs = hirschberg_alignment(a, b)
        a_indices = [i for i, _ in pairs if i is not None]
        b_indices = [j for _, j in pairs if j is not None]
        # Every position of both sequences appears exactly once.
        assert sorted(a_indices) == list(range(len(a)))
        assert sorted(b_indices) == list(range(len(b)))

    def test_matched_pairs_are_monotone(self):
        a, b = dna_pair(length=40, divergence=0.1, seed=4)
        _, pairs = hirschberg_alignment(a, b)
        matched = [(i, j) for i, j in pairs if i is not None and j is not None]
        for (i1, j1), (i2, j2) in zip(matched, matched[1:]):
            assert i2 > i1 and j2 > j1

    def test_empty_inputs(self):
        empty = np.array([], dtype=np.uint8)
        other = np.array([1, 2], dtype=np.uint8)
        score, pairs = hirschberg_alignment(empty, other)
        assert score == -2  # two gaps
        assert pairs == [(None, 0), (None, 1)]

    def test_identical_sequences_align_perfectly(self):
        a = np.array([0, 1, 2, 3, 0, 1], dtype=np.uint8)
        score, pairs = hirschberg_alignment(a, a)
        assert score == 12
        assert pairs == [(i, i) for i in range(6)]


class TestK2Score:
    def test_k2_prefers_true_parent(self):
        from repro.mining.bayesnet import family_k2

        rng = np.random.default_rng(7)
        parent = (rng.random(400) < 0.5).astype(np.uint8)
        child = parent.copy()
        flip = rng.random(400) < 0.1
        child[flip] = 1 - child[flip]
        data = np.stack([parent, child], axis=1)
        assert family_k2(data, 1, (0,)) > family_k2(data, 1, ())

    def test_hill_climb_with_k2(self):
        from repro.mining.bayesnet import family_k2, hill_climb
        from repro.mining.datasets import genotype_matrix

        data = genotype_matrix(300, 8, seed=5)
        net, score = hill_climb(data, max_parents=2, score_family=family_k2)
        assert len(net.edges()) > 0
