"""Runtime invariant auditor: silent corruption must not survive a run.

The auditor exists to catch state that is *internally plausible but
wrong* — a counter bumped by a bit flip, a directory entry lost to a
bad store — so every test here seeds exactly that kind of damage and
demands a named violation, in both failure postures (strict raises
:class:`AuditError`, lenient degrades) and both execution paths (live
co-simulation and replay).
"""

import pickle

import pytest

from repro.audit import (
    AUDIT_ENV,
    AUDIT_FULL,
    AUDIT_OFF,
    AUDIT_SAMPLE,
    resolve_audit_mode,
    run_audit,
)
from repro.audit.report import AuditCheck, AuditReport, make_check
from repro.cache.emulator import DragonheadConfig, DragonheadEmulator
from repro.core.cosim import CoSimPlatform
from repro.errors import AuditError
from repro.faults.report import AUDIT
from repro.harness.replay import capture_replay_log, replay
from repro.harness.report import render_audit_report
from repro.units import MB
from repro.workloads.registry import get_workload


def small_guest(name: str = "FIMI"):
    return get_workload(name).synthetic_guest(
        accesses_per_thread=6000, scale=1 / 256
    )


def corrupt_on_readout(monkeypatch, corrupt) -> None:
    """Apply ``corrupt(emulator)`` at readout time — after the run, before
    the audit — modeling a silent in-run corruption of final state."""
    real = DragonheadEmulator.read_performance_data

    def corrupting(self):
        corrupt(self)
        return real(self)

    monkeypatch.setattr(DragonheadEmulator, "read_performance_data", corrupting)


class TestModeResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, AUDIT_FULL)
        assert resolve_audit_mode(AUDIT_OFF) == AUDIT_OFF

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, AUDIT_SAMPLE)
        assert resolve_audit_mode(None) == AUDIT_SAMPLE
        monkeypatch.delenv(AUDIT_ENV)
        assert resolve_audit_mode(None) == AUDIT_OFF

    def test_typo_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="audit mode"):
            resolve_audit_mode("fulll")
        monkeypatch.setenv(AUDIT_ENV, "sampel")
        with pytest.raises(ValueError, match="audit mode"):
            resolve_audit_mode(None)


class TestCleanRuns:
    @pytest.mark.parametrize("mode", [AUDIT_SAMPLE, AUDIT_FULL])
    def test_clean_live_run_passes(self, mode):
        result = CoSimPlatform(DragonheadConfig(cache_size=1 * MB)).run(
            small_guest(), 2, audit=mode
        )
        assert result.audit is not None
        assert result.audit.ok
        assert result.audit.mode == mode
        assert not result.degraded

    def test_audit_off_attaches_nothing(self):
        result = CoSimPlatform(DragonheadConfig(cache_size=1 * MB)).run(
            small_guest(), 2
        )
        assert result.audit is None

    def test_fresh_and_replay_audits_agree(self):
        config = DragonheadConfig(cache_size=1 * MB)
        fresh = CoSimPlatform(config, quantum=512).run(
            small_guest(), 2, audit=AUDIT_FULL
        )
        log = capture_replay_log(small_guest(), 2, quantum=512)
        replayed = replay(log, config, audit=AUDIT_FULL)
        assert replayed.audit == fresh.audit
        assert replayed == fresh

    def test_non_lru_policy_runs_without_oracle(self):
        result = CoSimPlatform(
            DragonheadConfig(cache_size=1 * MB, policy="fifo")
        ).run(small_guest(), 2, audit=AUDIT_FULL)
        assert result.audit.ok
        assert all(c.name != "lru-oracle" for c in result.audit.checks)


class TestSeededCorruption:
    def test_counter_corruption_raises_in_strict(self, monkeypatch):
        corrupt_on_readout(monkeypatch, lambda emu: setattr(
            emu.banks[0].stats, "hits", emu.banks[0].stats.hits + 1
        ))
        with pytest.raises(AuditError) as excinfo:
            CoSimPlatform(DragonheadConfig(cache_size=1 * MB)).run(
                small_guest(), 2, audit=AUDIT_FULL
            )
        names = {check.name for check in excinfo.value.report.violations}
        assert "bank-conservation" in names

    def test_counter_corruption_degrades_in_lenient(self, monkeypatch):
        corrupt_on_readout(monkeypatch, lambda emu: setattr(
            emu.banks[0].stats, "misses", emu.banks[0].stats.misses + 2
        ))
        result = CoSimPlatform(
            DragonheadConfig(cache_size=1 * MB), strict=False
        ).run(small_guest(), 2, audit=AUDIT_FULL)
        assert not result.audit.ok
        assert result.degraded
        audit_records = [r for r in result.degradation if r.source == AUDIT]
        assert audit_records
        assert any(r.kind.startswith("audit-") for r in audit_records)

    def test_instruction_counter_corruption_detected(self, monkeypatch):
        def corrupt(emu):
            emu.af.instructions_retired += 1000

        corrupt_on_readout(monkeypatch, corrupt)
        with pytest.raises(AuditError) as excinfo:
            CoSimPlatform(DragonheadConfig(cache_size=1 * MB)).run(
                small_guest(), 2, audit=AUDIT_SAMPLE
            )
        names = {check.name for check in excinfo.value.report.violations}
        assert "instruction-sync" in names

    def test_lost_directory_line_detected(self, monkeypatch):
        def corrupt(emu):
            # Silently drop one resident line from one bank's directory:
            # exactly the store-corruption the occupancy and oracle
            # checks exist to catch.
            for bank in emu.banks:
                kernel = bank._policy
                for ways in kernel._sets:
                    if ways:
                        ways.popitem()
                        return

        corrupt_on_readout(monkeypatch, corrupt)
        with pytest.raises(AuditError) as excinfo:
            CoSimPlatform(DragonheadConfig(cache_size=1 * MB)).run(
                small_guest(), 2, audit=AUDIT_FULL
            )
        names = {check.name for check in excinfo.value.report.violations}
        assert names & {"occupancy", "lru-oracle"}

    def test_replay_corruption_detected_too(self, monkeypatch):
        log = capture_replay_log(small_guest(), 2, quantum=512)
        corrupt_on_readout(monkeypatch, lambda emu: setattr(
            emu.banks[0].stats, "reads", emu.banks[0].stats.reads + 1
        ))
        with pytest.raises(AuditError):
            replay(log, DragonheadConfig(cache_size=1 * MB), audit=AUDIT_SAMPLE)


class TestReportPlumbing:
    def test_report_shapes(self):
        good = AuditCheck(name="a", ok=True)
        bad = make_check("b", ["broke"])
        report = AuditReport(mode=AUDIT_SAMPLE, checks=(good, bad))
        assert not report.ok
        assert [c.name for c in report.violations] == ["b"]
        records = report.degradation_records()
        assert len(records) == 1
        assert records[0].kind == "audit-b" and records[0].source == AUDIT
        assert "b" in report.describe()

    def test_detail_clamped(self):
        check = make_check("big", ["x" * 10_000])
        assert len(check.detail) < 1000

    def test_audit_error_survives_pickling(self):
        report = AuditReport(
            mode=AUDIT_FULL, checks=(make_check("b", ["broke"]),)
        )
        error = pickle.loads(pickle.dumps(AuditError(report)))
        assert error.report == report
        assert "b" in str(error)

    def test_render_audit_report(self):
        result = CoSimPlatform(DragonheadConfig(cache_size=1 * MB)).run(
            small_guest(), 2, audit=AUDIT_SAMPLE
        )
        text = render_audit_report([result])
        assert "1/1 runs audited" in text
        assert "0 violation(s)" in text
        assert "no runs were audited" in render_audit_report([])

    def test_run_audit_direct(self):
        platform = CoSimPlatform(DragonheadConfig(cache_size=1 * MB))
        result = platform.run(small_guest(), 2)
        report = run_audit(
            platform.emulator, result.performance, mode=AUDIT_SAMPLE
        )
        assert report.ok


class TestOracleSampling:
    """The tap's single-AND fast sample path equals the generic predicate."""

    @pytest.mark.parametrize("num_sets", [1, 4, 64, 1024])
    @pytest.mark.parametrize("every", [1, 2, 64, 128])
    def test_fast_path_matches_generic_predicate(self, num_sets, every):
        import numpy as np

        from repro.audit.oracle import OracleTap

        lines = np.arange(4096, dtype=np.uint64) * np.uint64(2654435761)
        fast = OracleTap(
            num_sets=num_sets, associativity=4, num_banks=4, bank_shift=2,
            every=every,
        )
        generic = OracleTap(
            num_sets=num_sets, associativity=4, num_banks=4, bank_shift=2,
            every=every,
        )
        assert fast._fast_mask is not None
        generic._fast_mask = None  # force the modulo predicate
        fast.observe(lines)
        generic.observe(lines)
        assert fast.observed == generic.observed
        assert sorted(fast._policies) == sorted(generic._policies)
        for key, policy in fast._policies.items():
            assert policy.resident_tags(0) == generic._policies[
                key
            ].resident_tags(0)

    def test_non_power_of_two_interval_uses_generic_path(self):
        from repro.audit.oracle import OracleTap

        tap = OracleTap(
            num_sets=64, associativity=4, num_banks=4, bank_shift=2, every=3
        )
        assert tap._fast_mask is None
