"""Tests for ``scripts/bench_compare.py``.

The history diff must gate only on hot-path metrics both entries hold:
a benchmark (or metric) present in one entry is reported as new/removed
context, never a regression — otherwise every freshly added benchmark
would fail CI against the history that predates it.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "bench_compare.py"
_spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
bench_compare = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_compare", bench_compare)
_spec.loader.exec_module(bench_compare)


def _entry(results, hostname="host"):
    return {"machine": {"hostname": hostname, "timestamp": "t"}, "results": results}


def _history(path, *entries):
    path.write_text(json.dumps({"format": 2, "entries": list(entries)}))
    return path


class TestCompare:
    def test_benchmark_only_in_new_entry_is_not_a_regression(self):
        base = _entry({"replay_engine": {"speedup": 6.0}})
        new = _entry(
            {
                "replay_engine": {"speedup": 6.1},
                "cosim_sampled": {"speedup": 30.0, "max_rel_mpki_error": 0.01},
            }
        )
        lines, status = bench_compare.compare(base, new, threshold=0.10)
        assert status == 0
        assert any("cosim_sampled: new" in line for line in lines)

    def test_benchmark_only_in_base_entry_reports_removed(self):
        base = _entry({"olken": {"accesses_per_second": 1e6}})
        new = _entry({})
        lines, status = bench_compare.compare(base, new, threshold=0.10)
        assert status == 0
        assert any("olken: removed" in line for line in lines)

    def test_metric_only_in_one_entry_is_labelled_not_gated(self):
        base = _entry({"replay_engine": {"speedup": 6.0, "old_metric": 1.0}})
        new = _entry({"replay_engine": {"speedup": 6.0, "warm_seconds": 0.5}})
        lines, status = bench_compare.compare(base, new, threshold=0.10)
        assert status == 0
        joined = "\n".join(lines)
        assert "warm_seconds" in joined and "new" in joined
        assert "old_metric" in joined and "removed" in joined

    def test_non_dict_results_are_tolerated(self):
        base = _entry({"replay_engine": "corrupt"})
        new = _entry({"replay_engine": {"speedup": 6.0}})
        lines, status = bench_compare.compare(base, new, threshold=0.10)
        assert status == 0
        assert any("replay_engine" in line for line in lines)

    def test_shared_hot_path_regression_still_gates(self):
        base = _entry({"replay_engine": {"speedup": 6.0}})
        new = _entry({"replay_engine": {"speedup": 4.0}})
        lines, status = bench_compare.compare(base, new, threshold=0.10)
        assert status == 1
        assert any("REGRESSION" in line for line in lines)

    def test_lower_is_better_for_seconds(self):
        base = _entry({"replay_engine": {"engine_seconds": 1.0}})
        new = _entry({"replay_engine": {"engine_seconds": 2.0}})
        _, status = bench_compare.compare(base, new, threshold=0.10)
        assert status == 1

    def test_context_metrics_never_gate(self):
        base = _entry({"replay_engine": {"accesses": 100, "cores": 4}})
        new = _entry({"replay_engine": {"accesses": 5, "cores": 2}})
        _, status = bench_compare.compare(base, new, threshold=0.10)
        assert status == 0


class TestMain:
    def test_diffs_last_two_entries(self, tmp_path, capsys):
        path = _history(
            tmp_path / "BENCH.json",
            _entry({"replay_engine": {"speedup": 6.0}}),
            _entry({"replay_engine": {"speedup": 6.2}}),
        )
        assert bench_compare.main(["--file", str(path)]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_single_entry_is_an_error(self, tmp_path, capsys):
        path = _history(
            tmp_path / "BENCH.json", _entry({"replay_engine": {"speedup": 6.0}})
        )
        assert bench_compare.main(["--file", str(path)]) == 2

    def test_new_benchmark_against_old_history_passes(self, tmp_path):
        path = _history(
            tmp_path / "BENCH.json",
            _entry({"replay_engine": {"speedup": 6.0}}),
            _entry(
                {
                    "replay_engine": {"speedup": 6.0},
                    "cosim_sampled": {"speedup": 30.55},
                }
            ),
        )
        assert bench_compare.main(["--file", str(path)]) == 0
