"""Tests for the set-associative cache model."""

import numpy as np
import pytest

from repro.cache.cache import CacheConfig, FullyAssociativeLRU, SetAssociativeCache
from repro.errors import ConfigurationError
from repro.trace.generators import Region, cyclic_scan, uniform_random
from repro.trace.record import AccessKind, TraceChunk
from repro.units import KB, MB


class TestCacheConfig:
    def test_geometry(self):
        config = CacheConfig(size=32 * KB, line_size=64, associativity=8)
        assert config.num_lines == 512
        assert config.num_sets == 64

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size=32 * KB, line_size=48, associativity=8)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size=1000, line_size=64, associativity=4)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size=3 * 64 * 4, line_size=64, associativity=4)

    def test_fully_associative_constructor(self):
        config = CacheConfig.fully_associative(64 * KB)
        assert config.num_sets == 1
        assert config.associativity == 1024

    def test_describe(self):
        text = CacheConfig(size=4 * MB, name="LLC").describe()
        assert "4MB" in text and "LRU" in text


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(CacheConfig(size=8 * KB, associativity=4))
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.access(0x13F)  # same 64B line as 0x100

    def test_capacity_eviction(self):
        # Fully associative, 4 lines: 5 distinct lines thrash.
        cache = SetAssociativeCache(CacheConfig.fully_associative(256, line_size=64))
        for address in range(0, 5 * 64, 64):
            cache.access(address)
        assert not cache.access(0)  # line 0 was evicted
        assert cache.stats.evictions >= 2

    def test_stats_accumulate(self):
        cache = SetAssociativeCache(CacheConfig(size=8 * KB))
        cache.access(0, AccessKind.READ)
        cache.access(0, AccessKind.WRITE, core=3)
        stats = cache.stats
        assert stats.accesses == 2
        assert stats.reads == 1 and stats.writes == 1
        assert stats.hits == 1 and stats.misses == 1
        assert stats.per_core_accesses[3] == 1

    def test_access_chunk_equals_scalar_loop(self):
        chunk = uniform_random(
            Region(0, 64 * KB), count=2000, rng=np.random.default_rng(7)
        )
        config = CacheConfig(size=8 * KB, associativity=4)
        bulk = SetAssociativeCache(config)
        bulk.access_chunk(chunk)
        scalar = SetAssociativeCache(config)
        for access in chunk:
            scalar.access(access.address, access.kind, access.core)
        assert bulk.stats.misses == scalar.stats.misses
        assert bulk.stats.hits == scalar.stats.hits

    def test_invalidate(self):
        cache = SetAssociativeCache(CacheConfig(size=8 * KB))
        cache.access(0x200)
        assert cache.contains(0x200)
        assert cache.invalidate(0x200)
        assert not cache.contains(0x200)

    def test_install_line_no_demand_stats(self):
        cache = SetAssociativeCache(CacheConfig(size=8 * KB))
        cache.install_line(5)
        assert cache.stats.accesses == 0
        assert cache.contains_line(5)

    def test_flush_keeps_stats(self):
        cache = SetAssociativeCache(CacheConfig(size=8 * KB))
        cache.access(0x40)
        cache.flush()
        assert not cache.contains(0x40)
        assert cache.stats.accesses == 1

    def test_cyclic_scan_thrash_then_fit(self):
        """The defining LRU behaviours: total thrash above capacity,
        perfect reuse below it."""
        region = Region(0, 32 * KB)
        trace = cyclic_scan(region, passes=4, stride=64)
        big = SetAssociativeCache(CacheConfig.fully_associative(64 * KB))
        big.access_chunk(trace)
        assert big.stats.misses == 512  # cold only
        small = SetAssociativeCache(CacheConfig.fully_associative(16 * KB))
        small.access_chunk(trace)
        assert small.stats.misses == len(trace)  # every access misses


class TestFullyAssociativeLRU:
    def test_matches_setassoc_fully_assoc(self):
        chunk = uniform_random(
            Region(0, 32 * KB), count=3000, rng=np.random.default_rng(11)
        )
        reference = SetAssociativeCache(CacheConfig.fully_associative(8 * KB))
        reference.access_chunk(chunk)
        fast = FullyAssociativeLRU(capacity_lines=128)
        fast.access_chunk(chunk)
        assert fast.stats.misses == reference.stats.misses

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            FullyAssociativeLRU(0)

    def test_eviction_order(self):
        cache = FullyAssociativeLRU(capacity_lines=2)
        cache.access(0)      # line 0
        cache.access(64)     # line 1
        cache.access(0)      # touch line 0 again
        cache.access(128)    # evicts line 1
        assert cache.access(0)        # still resident
        assert not cache.access(64)   # was evicted


class TestInclusionProperty:
    def test_bigger_cache_never_misses_more(self):
        """LRU inclusion: miss count is monotone non-increasing in size."""
        chunk = uniform_random(
            Region(0, 128 * KB), count=5000, rng=np.random.default_rng(13)
        )
        misses = []
        for capacity in (32, 64, 128, 256, 512):
            cache = FullyAssociativeLRU(capacity_lines=capacity)
            cache.access_chunk(chunk)
            misses.append(cache.stats.misses)
        assert misses == sorted(misses, reverse=True)
