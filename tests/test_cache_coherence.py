"""Tests for the MESI coherence layer."""

import numpy as np
import pytest

from repro.cache.cache import CacheConfig
from repro.cache.coherence import CoherentCacheSystem, MESIState
from repro.errors import ConfigurationError
from repro.trace.record import AccessKind, TraceChunk
from repro.units import KB


def system(cores: int = 2) -> CoherentCacheSystem:
    return CoherentCacheSystem(
        private_config=CacheConfig(size=1 * KB, line_size=64, associativity=4),
        cores=cores,
    )


class TestMESITransitions:
    def test_read_miss_gets_exclusive(self):
        s = system()
        s.access(0, 0x100, AccessKind.READ)
        assert s.state(0, 0x100) is MESIState.EXCLUSIVE

    def test_second_reader_shares(self):
        s = system()
        s.access(0, 0x100, AccessKind.READ)
        s.access(1, 0x100, AccessKind.READ)
        assert s.state(0, 0x100) is MESIState.SHARED
        assert s.state(1, 0x100) is MESIState.SHARED

    def test_write_takes_modified(self):
        s = system()
        s.access(0, 0x100, AccessKind.WRITE)
        assert s.state(0, 0x100) is MESIState.MODIFIED

    def test_exclusive_silent_upgrade(self):
        s = system()
        s.access(0, 0x100, AccessKind.READ)
        invalidations = s.stats.invalidations_sent
        s.access(0, 0x100, AccessKind.WRITE)
        assert s.state(0, 0x100) is MESIState.MODIFIED
        assert s.stats.invalidations_sent == invalidations  # E→M is silent

    def test_shared_upgrade_invalidates_peers(self):
        s = system()
        s.access(0, 0x100, AccessKind.READ)
        s.access(1, 0x100, AccessKind.READ)
        s.access(0, 0x100, AccessKind.WRITE)
        assert s.state(0, 0x100) is MESIState.MODIFIED
        assert s.state(1, 0x100) is MESIState.INVALID
        assert s.stats.upgrades == 1
        assert s.stats.invalidations_sent == 1

    def test_read_of_modified_line_intervenes(self):
        s = system()
        s.access(0, 0x100, AccessKind.WRITE)
        s.access(1, 0x100, AccessKind.READ)
        assert s.state(0, 0x100) is MESIState.SHARED
        assert s.state(1, 0x100) is MESIState.SHARED
        assert s.stats.interventions == 1
        assert s.stats.writebacks == 1

    def test_write_miss_invalidates_all(self):
        s = system(3)
        s.access(0, 0x100, AccessKind.READ)
        s.access(1, 0x100, AccessKind.READ)
        s.access(2, 0x100, AccessKind.WRITE)
        assert s.state(0, 0x100) is MESIState.INVALID
        assert s.state(1, 0x100) is MESIState.INVALID
        assert s.state(2, 0x100) is MESIState.MODIFIED

    def test_private_data_no_invalidations(self):
        s = system()
        for i in range(8):
            s.access(0, i * 64, AccessKind.WRITE)
            s.access(1, 0x10000 + i * 64, AccessKind.WRITE)
        assert s.stats.invalidations_sent == 0

    def test_sharers_listing(self):
        s = system(3)
        s.access(0, 0x100, AccessKind.READ)
        s.access(2, 0x100, AccessKind.READ)
        assert s.sharers(0x100) == [0, 2]

    def test_rejects_bad_core(self):
        with pytest.raises(ConfigurationError):
            system(2).access(5, 0, AccessKind.READ)


class TestInvariants:
    def test_invariants_hold_after_random_traffic(self):
        rng = np.random.default_rng(17)
        s = system(4)
        addresses = rng.integers(0, 64, size=2000) * 64
        kinds = rng.integers(0, 2, size=2000)
        cores = rng.integers(0, 4, size=2000)
        chunk = TraceChunk(addresses, kinds, cores)
        s.access_chunk(chunk)
        s.check_invariants()

    def test_llc_sees_coherence_misses(self):
        s = CoherentCacheSystem(
            private_config=CacheConfig(size=1 * KB, line_size=64, associativity=4),
            cores=2,
            llc_config=CacheConfig(size=8 * KB, line_size=64, associativity=8),
        )
        s.access(0, 0x100, AccessKind.READ)
        s.access(1, 0x100, AccessKind.READ)
        assert s.llc.stats.accesses == 2
        assert s.llc.stats.hits == 1  # second core's miss hits in LLC
