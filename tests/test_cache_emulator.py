"""Tests for the Dragonhead emulator model."""

import pytest

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.cache.emulator import NUM_BANKS, DragonheadConfig, DragonheadEmulator
from repro.core.fsb import FSBTransaction
from repro.errors import ConfigurationError, ProtocolError
from repro.protocol import Message, MessageCodec, MessageKind
from repro.trace.generators import Region, cyclic_scan, uniform_random
from repro.trace.record import AccessKind, TraceChunk
from repro.units import KB, MB


def send(emulator: DragonheadEmulator, message: Message) -> None:
    for address in MessageCodec.encode(message):
        emulator.snoop(FSBTransaction(address=address, kind=AccessKind.WRITE))


def start(emulator: DragonheadEmulator, core: int = 0) -> None:
    send(emulator, Message(MessageKind.START_EMULATION))
    send(emulator, Message(MessageKind.CORE_ID, core))


class TestConfigurationLimits:
    def test_hardware_envelope_enforced(self):
        with pytest.raises(ConfigurationError):
            DragonheadConfig(cache_size=512 * KB)  # below 1MB minimum
        with pytest.raises(ConfigurationError):
            DragonheadConfig(cache_size=512 * MB)  # above 256MB maximum
        with pytest.raises(ConfigurationError):
            DragonheadConfig(cache_size=4 * MB, line_size=32)
        with pytest.raises(ConfigurationError):
            DragonheadConfig(cache_size=4 * MB, line_size=8192)

    def test_supported_corners(self):
        DragonheadConfig(cache_size=1 * MB, line_size=64)
        DragonheadConfig(cache_size=256 * MB, line_size=4096)

    def test_bank_geometry(self):
        config = DragonheadConfig(cache_size=4 * MB)
        for bank in range(NUM_BANKS):
            bank_config = config.bank_config(bank)
            assert bank_config.size == 1 * MB


class TestWindowGating:
    def test_traffic_outside_window_filtered(self):
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        emulator.snoop_chunk(TraceChunk([0x100, 0x200]))
        assert emulator.stats.accesses == 0
        assert emulator.af.filtered_transactions == 2

    def test_traffic_inside_window_emulated(self):
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        start(emulator)
        emulator.snoop_chunk(TraceChunk([0x100, 0x200]))
        assert emulator.stats.accesses == 2

    def test_stop_reopens_filtering(self):
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        start(emulator)
        emulator.snoop_chunk(TraceChunk([0x100]))
        send(emulator, Message(MessageKind.STOP_EMULATION))
        emulator.snoop_chunk(TraceChunk([0x200]))
        assert emulator.stats.accesses == 1
        assert emulator.af.filtered_transactions == 1

    def test_double_start_is_protocol_error(self):
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        start(emulator)
        with pytest.raises(ProtocolError):
            send(emulator, Message(MessageKind.START_EMULATION))

    def test_stop_without_start_is_protocol_error(self):
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        with pytest.raises(ProtocolError):
            send(emulator, Message(MessageKind.STOP_EMULATION))

    def test_counter_regression_is_protocol_error(self):
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        send(emulator, Message(MessageKind.INSTRUCTIONS_RETIRED, 100))
        with pytest.raises(ProtocolError):
            send(emulator, Message(MessageKind.INSTRUCTIONS_RETIRED, 50))


class TestCoreTagging:
    def test_core_id_attributes_traffic(self):
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        start(emulator, core=3)
        emulator.snoop_chunk(TraceChunk([0x100]))
        send(emulator, Message(MessageKind.CORE_ID, 7))
        emulator.snoop_chunk(TraceChunk([0x200]))
        stats = emulator.stats
        assert stats.per_core_accesses == {3: 1, 7: 1}


class TestEmulationCorrectness:
    def test_matches_monolithic_cache(self):
        """Four banked slices behave exactly like one shared cache."""
        import numpy as np

        chunk = uniform_random(
            Region(0, 8 * MB), count=20000, rng=np.random.default_rng(23)
        )
        emulator = DragonheadEmulator(
            DragonheadConfig(cache_size=1 * MB, associativity=16)
        )
        start(emulator)
        emulator.snoop_chunk(chunk)
        # Reference: same total capacity, same associativity, banked by hand.
        reference_banks = [
            SetAssociativeCache(
                CacheConfig(size=256 * KB, line_size=64, associativity=16)
            )
            for _ in range(4)
        ]
        lines = chunk.lines(64)
        for line in lines:
            line = int(line)
            reference_banks[line % 4].access_line(line >> 2)
        reference_misses = sum(b.stats.misses for b in reference_banks)
        assert emulator.stats.misses == reference_misses

    def test_working_set_capture(self):
        """A working set under the emulated size stops missing."""
        trace = cyclic_scan(Region(0, 512 * KB), passes=4, stride=64)
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=2 * MB))
        start(emulator)
        emulator.snoop_chunk(trace)
        data = emulator.read_performance_data()
        cold_lines = 512 * KB // 64
        assert data.stats.misses == cold_lines

    def test_mpki_uses_retired_instructions(self):
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        start(emulator)
        emulator.snoop_chunk(TraceChunk([i * 64 for i in range(100)]))
        send(emulator, Message(MessageKind.INSTRUCTIONS_RETIRED, 10_000))
        data = emulator.read_performance_data()
        assert data.mpki == pytest.approx(100 / 10_000 * 1000)

    def test_line_size_reduces_streaming_misses(self):
        trace = cyclic_scan(Region(0, 4 * MB), passes=1, stride=64)
        misses = []
        for line_size in (64, 256):
            emulator = DragonheadEmulator(
                DragonheadConfig(cache_size=1 * MB, line_size=line_size)
            )
            start(emulator)
            emulator.snoop_chunk(trace)
            misses.append(emulator.stats.misses)
        assert misses[0] == pytest.approx(4 * misses[1], rel=0.01)


class TestSampling:
    def test_windows_emitted_on_cycle_progress(self):
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        start(emulator)
        cycles_per_window = emulator.sampler.cycles_per_window
        for window in range(1, 4):
            emulator.snoop_chunk(TraceChunk([i * 64 for i in range(10)]))
            send(emulator, Message(MessageKind.INSTRUCTIONS_RETIRED, window * 1000))
            send(
                emulator,
                Message(MessageKind.CYCLES_COMPLETED, window * cycles_per_window),
            )
        data = emulator.read_performance_data()
        assert len(data.samples) == 3
        assert all(s.instructions == 1000 for s in data.samples)


class TestBankShift:
    def test_shift_derived_from_bank_count(self):
        from repro.cache.emulator import BANK_SHIFT

        assert BANK_SHIFT == NUM_BANKS.bit_length() - 1

    def test_non_power_of_two_bank_count_is_refused(self):
        """bit_length()-1 under-shifts for non-power-of-two counts, which
        would silently collide distinct lines inside a bank — the guard
        must refuse such a configuration outright."""
        from repro.cache.emulator import derive_bank_shift

        assert derive_bank_shift(1) == 0
        assert derive_bank_shift(4) == 2
        assert derive_bank_shift(16) == 4
        for bad in (0, -4, 3, 5, 6, 7, 12):
            with pytest.raises(ConfigurationError):
                derive_bank_shift(bad)

    def test_scalar_and_chunk_paths_agree(self):
        """snoop() per transaction equals snoop_chunk(), bank by bank."""
        import numpy as np

        chunk = uniform_random(
            Region(0, 4 * MB), count=8192, rng=np.random.default_rng(51)
        )
        config = DragonheadConfig(cache_size=1 * MB)
        by_chunk = DragonheadEmulator(config)
        by_scalar = DragonheadEmulator(config)
        start(by_chunk)
        start(by_scalar)
        by_chunk.snoop_chunk(chunk)
        for address, kind in zip(chunk.addresses.tolist(), chunk.kinds.tolist()):
            by_scalar.snoop(FSBTransaction(address=address, kind=AccessKind(kind)))
        for bank_chunk, bank_scalar in zip(by_chunk.banks, by_scalar.banks):
            assert bank_chunk.stats.misses == bank_scalar.stats.misses
            assert bank_chunk.stats.accesses == bank_scalar.stats.accesses

    def test_scalar_and_batch_paths_agree_with_core_switches(self):
        """snoop() with interleaved CORE_ID messages equals one
        core-tagged snoop_batch() call — same routing, same per-core
        attribution, same per-bank state."""
        import numpy as np

        rng = np.random.default_rng(87)
        chunk = uniform_random(Region(0, 4 * MB), count=4096, rng=rng)
        cores = rng.integers(0, 4, size=len(chunk)).astype(np.uint16)
        tagged = TraceChunk(chunk.addresses, chunk.kinds, cores, chunk.pcs)
        config = DragonheadConfig(cache_size=1 * MB)
        by_batch = DragonheadEmulator(config)
        by_scalar = DragonheadEmulator(config)
        start(by_batch)
        start(by_scalar)
        by_batch.snoop_batch(tagged)
        current = 0
        for address, kind, core in zip(
            chunk.addresses.tolist(), chunk.kinds.tolist(), cores.tolist()
        ):
            if core != current:
                send(by_scalar, Message(MessageKind.CORE_ID, core))
                current = core
            by_scalar.snoop(FSBTransaction(address=address, kind=AccessKind(kind)))
        assert by_batch.stats == by_scalar.stats
        for bank_batch, bank_scalar in zip(by_batch.banks, by_scalar.banks):
            assert bank_batch.stats == bank_scalar.stats
            # Full LRU directory state (residency + recency order).
            state_batch = bank_batch.state_dict()["policy"]
            state_scalar = bank_scalar.state_dict()["policy"]
            assert np.array_equal(state_batch["lengths"], state_scalar["lengths"])
            assert np.array_equal(state_batch["tags"], state_scalar["tags"])


class TestReconfigure:
    def test_reconfigure_clears_all_emulation_state(self):
        """A reconfigure must behave exactly like a fresh emulator."""
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        start(emulator)
        emulator.snoop_chunk(
            cyclic_scan(Region(0, 256 * KB), passes=2, stride=64)
        )
        send(emulator, Message(MessageKind.INSTRUCTIONS_RETIRED, 5000))
        assert emulator.stats.accesses > 0

        new_config = DragonheadConfig(cache_size=2 * MB, line_size=128)
        emulator.reconfigure(new_config)
        assert emulator.config == new_config
        assert emulator.stats.accesses == 0
        assert emulator.af.instructions_retired == 0
        assert not emulator.af.emulating
        assert emulator.sampler.samples == []
        assert all(bank.stats.accesses == 0 for bank in emulator.banks)
        assert all(
            bank.config.line_size == 128 and bank.config.size == 512 * KB
            for bank in emulator.banks
        )
        # No residency may leak: re-running the same trace cold-misses.
        start(emulator)
        trace = cyclic_scan(Region(0, 256 * KB), passes=1, stride=128)
        emulator.snoop_chunk(trace)
        fresh = DragonheadEmulator(new_config)
        start(fresh)
        fresh.snoop_chunk(trace)
        assert emulator.stats.misses == fresh.stats.misses

    def test_reconfigure_matches_new_instance_after_session(self):
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        start(emulator)
        emulator.snoop_chunk(
            uniform_random(Region(0, 2 * MB), count=4096)
        )
        send(emulator, Message(MessageKind.STOP_EMULATION))
        config = DragonheadConfig(cache_size=4 * MB)
        emulator.reconfigure(config)
        data = emulator.read_performance_data()
        assert data.stats.accesses == 0
        assert data.instructions_retired == 0
        assert data.filtered_transactions == 0
