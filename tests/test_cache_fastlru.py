"""Differential tests: FastLRUKernel vs LRUPolicy vs the oracle.

The fast kernel's contract is *exact* equivalence with the list-based
``LRUPolicy`` — same hits, same victims, same order, same statistics —
on any access sequence.  These tests replay identical random and
workload-shaped traces through both implementations (and, for the
single-set geometry, through the ``FullyAssociativeLRU`` oracle) and
compare every observable: per-access outcomes, eviction counts, full
``CacheStats`` including the per-core dictionaries, and the final
recency order of every set.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.cache import CacheConfig, FullyAssociativeLRU, SetAssociativeCache
from repro.cache.fastlru import EMPTY_WAY, FastLRUKernel
from repro.cache.replacement import LRUPolicy
from repro.trace.generators import (
    Region,
    interleave_mix,
    pointer_chase,
    sequential_scan,
    uniform_random,
    zipf_random,
)
from repro.trace.record import AccessKind, TraceChunk
from repro.units import KB, MB

LINE = 64


def workload_shaped_lines(count: int, seed: int) -> np.ndarray:
    """Line numbers shaped like the paper's workloads: scans + probes."""
    rng = np.random.default_rng(seed)
    per = count // 4
    parts = [
        sequential_scan(Region(0, 4 * MB), count=per, stride=8),
        zipf_random(Region(0, 2 * MB), count=per, rng=rng),
        uniform_random(Region(0, 8 * MB), count=per, rng=rng),
        pointer_chase(Region(0, 4 * MB), count=count - 3 * per, rng=rng),
    ]
    return np.concatenate([chunk.lines(LINE) for chunk in parts])


def replay_reference(
    policy: LRUPolicy, lines: list[int], set_mask: int
) -> tuple[list[bool], list[int], int]:
    """Drive LRUPolicy one access at a time (the seed implementation)."""
    hits: list[bool] = []
    victims: list[int] = []
    evictions = 0
    for line in lines:
        hit, victim = policy.lookup(line & set_mask, line)
        hits.append(hit)
        if victim is None:
            victims.append(EMPTY_WAY)
        else:
            victims.append(victim)
            evictions += 1
    return hits, victims, evictions


def stats_tuple(stats) -> tuple:
    return (
        stats.accesses,
        stats.hits,
        stats.misses,
        stats.reads,
        stats.writes,
        stats.read_misses,
        stats.write_misses,
        stats.evictions,
        stats.per_core_accesses,
        stats.per_core_misses,
    )


class TestExactEquivalence:
    def test_million_access_differential_vs_lrupolicy(self):
        """≥1M replayed accesses: identical hits, victims, and order."""
        num_sets, assoc = 1024, 16
        lines = workload_shaped_lines(1_000_000, seed=11)
        assert lines.size >= 1_000_000
        kernel = FastLRUKernel(num_sets, assoc)
        reference = LRUPolicy(num_sets, assoc)
        set_mask = num_sets - 1
        # Replay in chunks so kernel state carries across batch calls,
        # the way trace streams reach the cache in production.
        total_evictions = 0
        cursor = 0
        ref_hits, ref_victims, ref_evictions = replay_reference(
            reference, lines.tolist(), set_mask
        )
        for chunk in np.array_split(lines, 16):
            result = kernel.lookup_batch(
                chunk, chunk & np.uint64(set_mask), collect_victims=True
            )
            n = len(chunk)
            assert result.hits.tolist() == ref_hits[cursor : cursor + n]
            assert result.victims.tolist() == ref_victims[cursor : cursor + n]
            total_evictions += result.evictions
            cursor += n
        assert total_evictions == ref_evictions
        for set_index in range(num_sets):
            assert kernel.resident_tags(set_index) == reference.resident_tags(
                set_index
            ), f"recency order diverged in set {set_index}"

    def test_cache_stats_equivalence_including_per_core(self):
        """Fast path and forced seed path agree on every counter."""
        mix = interleave_mix(
            [
                sequential_scan(Region(0, 2 * MB), count=60_000, stride=8),
                uniform_random(
                    Region(0, 4 * MB),
                    count=60_000,
                    write_fraction=0.3,
                    rng=np.random.default_rng(3),
                ),
            ],
            [0.5, 0.5],
            count=60_000,
            rng=np.random.default_rng(4),
        )
        cores = np.random.default_rng(5).integers(0, 8, size=len(mix)).astype(np.uint16)
        chunk = TraceChunk(mix.addresses, mix.kinds, cores, mix.pcs)
        config = CacheConfig(size=512 * KB, associativity=8)
        fast = SetAssociativeCache(config)
        seed = SetAssociativeCache(config)
        seed._policy = LRUPolicy(config.num_sets, config.associativity)
        fast.access_chunk(chunk)
        seed.access_chunk(chunk)
        assert stats_tuple(fast.stats) == stats_tuple(seed.stats)

    def test_single_set_matches_fully_associative_oracle(self):
        """fastlru, LRUPolicy, and the oracle agree on one-set caches."""
        trace = uniform_random(
            Region(0, 2 * MB), count=40_000, rng=np.random.default_rng(17)
        )
        size = 64 * KB
        oracle = FullyAssociativeLRU(capacity_lines=size // LINE, line_size=LINE)
        as_cache = SetAssociativeCache(CacheConfig.fully_associative(size))
        seed = SetAssociativeCache(CacheConfig.fully_associative(size))
        seed._policy = LRUPolicy(1, size // LINE)
        oracle.access_chunk(trace)
        as_cache.access_chunk(trace)
        seed.access_chunk(trace)
        assert stats_tuple(oracle.stats) == stats_tuple(as_cache.stats)
        assert stats_tuple(as_cache.stats) == stats_tuple(seed.stats)

    def test_scalar_and_batch_paths_agree(self):
        """access_line in a loop and access_chunk produce equal stats."""
        trace = zipf_random(
            Region(0, 1 * MB),
            count=20_000,
            write_fraction=0.25,
            rng=np.random.default_rng(23),
        )
        config = CacheConfig(size=128 * KB, associativity=4)
        batched = SetAssociativeCache(config)
        scalar = SetAssociativeCache(config)
        batched.access_chunk(trace)
        for address, kind, core in zip(
            trace.addresses.tolist(), trace.kinds.tolist(), trace.cores.tolist()
        ):
            scalar.access(address, AccessKind(kind), core)
        assert stats_tuple(batched.stats) == stats_tuple(scalar.stats)

    def test_consecutive_repeat_collapse_is_exact(self):
        """Stride-8 scans (8 repeats per line) hit the collapse pre-pass."""
        num_sets, assoc = 64, 4
        scan = sequential_scan(
            Region(0, 512 * KB), count=100_000, stride=8, write_fraction=0.5
        )
        lines = scan.lines(LINE)
        assert np.count_nonzero(lines[1:] == lines[:-1])  # collapse engages
        kernel = FastLRUKernel(num_sets, assoc)
        reference = LRUPolicy(num_sets, assoc)
        set_mask = num_sets - 1
        result = kernel.lookup_batch(
            lines, lines & np.uint64(set_mask), collect_victims=True
        )
        ref_hits, ref_victims, ref_evictions = replay_reference(
            reference, lines.tolist(), set_mask
        )
        assert result.hits.tolist() == ref_hits
        assert result.victims.tolist() == ref_victims
        assert result.evictions == ref_evictions

    @pytest.mark.parametrize("num_sets,assoc", [(2, 256), (1, 4096)])
    def test_large_associativity_geometry(self, num_sets, assoc):
        """The OrderedDict container (assoc > 128) is equally exact."""
        lines = uniform_random(
            Region(0, 4 * MB), count=60_000, rng=np.random.default_rng(31)
        ).lines(LINE)
        kernel = FastLRUKernel(num_sets, assoc)
        reference = LRUPolicy(num_sets, assoc)
        set_mask = num_sets - 1
        sets = lines & np.uint64(set_mask) if num_sets > 1 else None
        result = kernel.lookup_batch(lines, sets, collect_victims=True)
        ref_hits, ref_victims, ref_evictions = replay_reference(
            reference, lines.tolist(), set_mask
        )
        assert result.hits.tolist() == ref_hits
        assert result.victims.tolist() == ref_victims
        assert result.evictions == ref_evictions
        for set_index in range(num_sets):
            assert kernel.resident_tags(set_index) == reference.resident_tags(set_index)


class TestReplacementPolicyInterface:
    def test_scalar_lookup_matches_lrupolicy(self):
        kernel = FastLRUKernel(4, 2)
        reference = LRUPolicy(4, 2)
        rng = np.random.default_rng(41)
        for tag in rng.integers(0, 32, size=2000).tolist():
            assert kernel.lookup(tag & 3, tag) == reference.lookup(tag & 3, tag)
        for set_index in range(4):
            assert kernel.resident_tags(set_index) == reference.resident_tags(set_index)

    def test_contains_invalidate_flush(self):
        kernel = FastLRUKernel(2, 2)
        kernel.lookup(0, 10)
        kernel.lookup(1, 11)
        assert kernel.contains(0, 10) and kernel.contains(1, 11)
        assert kernel.invalidate(0, 10)
        assert not kernel.invalidate(0, 10)
        assert not kernel.contains(0, 10)
        kernel.flush()
        assert not kernel.contains(1, 11)
        # After an invalidate, the freed way is refilled without eviction.
        kernel.lookup(0, 1)
        kernel.lookup(0, 2)
        kernel.invalidate(0, 1)
        _, victim = kernel.lookup(0, 3)
        assert victim is None
        assert kernel.resident_tags(0) == [2, 3]

    def test_timestamp_matrix_views(self):
        kernel = FastLRUKernel(2, 3)
        for tag in (100, 101, 102, 101):  # set 0: LRU order 100, 102, 101
            kernel.lookup(0, tag)
        kernel.lookup(1, 201)
        tags = kernel.tag_matrix()
        stamps = kernel.stamp_matrix()
        assert tags.shape == stamps.shape == (2, 3)
        assert tags[0].tolist() == [100, 102, 101]
        assert stamps[0].tolist() == [0, 1, 2]
        assert tags[1].tolist() == [201, EMPTY_WAY, EMPTY_WAY]
        assert stamps[1].tolist() == [0, EMPTY_WAY, EMPTY_WAY]

    def test_empty_batch(self):
        kernel = FastLRUKernel(4, 2)
        result = kernel.lookup_batch(np.empty(0, dtype=np.uint64))
        assert result.hits.size == 0
        assert result.evictions == 0
        assert result.misses == 0
