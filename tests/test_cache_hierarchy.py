"""Tests for the L1 + shared LLC hierarchy."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.errors import ConfigurationError
from repro.trace.generators import Region, cyclic_scan
from repro.trace.record import AccessKind, TraceChunk
from repro.units import KB, MB


def small_hierarchy(cores: int = 2) -> CacheHierarchy:
    return CacheHierarchy(
        HierarchyConfig(
            l1=CacheConfig(size=1 * KB, line_size=64, associativity=4, name="L1"),
            llc=CacheConfig(size=8 * KB, line_size=64, associativity=8, name="LLC"),
            cores=cores,
        )
    )


class TestHierarchyConfig:
    def test_pentium4_like(self):
        config = HierarchyConfig.pentium4_like()
        assert config.l1.size == 8 * KB
        assert config.llc.size == 512 * KB
        assert config.cores == 1

    def test_cmp_factory(self):
        config = HierarchyConfig.cmp(cores=8, llc_size=32 * MB)
        assert config.cores == 8
        assert config.llc.size == 32 * MB

    def test_cmp_factory_large_lines(self):
        config = HierarchyConfig.cmp(cores=4, llc_size=4 * MB, llc_line=4096)
        assert config.llc.line_size == 4096

    def test_rejects_l1_line_bigger_than_llc(self):
        with pytest.raises(ConfigurationError):
            HierarchyConfig(
                l1=CacheConfig(size=1 * KB, line_size=128, associativity=4),
                llc=CacheConfig(size=8 * KB, line_size=64, associativity=8),
            )

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            HierarchyConfig(
                l1=CacheConfig(size=1 * KB, associativity=4),
                llc=CacheConfig(size=8 * KB, associativity=8),
                cores=0,
            )


class TestHierarchyBehaviour:
    def test_l1_hit_does_not_reach_llc(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0x100, AccessKind.READ, core=0)
        hierarchy.access(0x100, AccessKind.READ, core=0)
        assert hierarchy.llc.stats.accesses == 1  # only the first miss

    def test_l1s_are_private(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0x100, AccessKind.READ, core=0)
        hierarchy.access(0x100, AccessKind.READ, core=1)
        # Core 1's L1 missed (private), but the shared LLC hit.
        assert hierarchy.l1s[1].stats.misses == 1
        assert hierarchy.llc.stats.hits == 1

    def test_write_through_reaches_llc(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0x100, AccessKind.READ, core=0)
        hierarchy.access(0x100, AccessKind.WRITE, core=0)
        assert hierarchy.llc.stats.writes == 1

    def test_write_miss_does_not_allocate_l1(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0x300, AccessKind.WRITE, core=0)
        assert not hierarchy.l1s[0].contains(0x300)
        assert hierarchy.llc.contains(0x300)

    def test_rejects_out_of_range_core(self):
        with pytest.raises(ConfigurationError):
            small_hierarchy(2).access(0, core=5)

    def test_access_stream_result(self):
        hierarchy = small_hierarchy()
        trace = cyclic_scan(Region(0, 2 * KB), passes=2, stride=64)
        result = hierarchy.access_stream([trace.with_core(0)])
        assert result.accesses == len(trace)
        assert result.l1_total.accesses == len(trace)

    def test_llc_filters_hot_reuse(self):
        """A 512B hot set fits in L1: the LLC sees only cold traffic."""
        hierarchy = small_hierarchy()
        trace = cyclic_scan(Region(0, 512), passes=10, stride=64)
        hierarchy.access_chunk(trace.with_core(0))
        assert hierarchy.llc.stats.accesses == 8  # 8 cold lines only

    def test_core_tags_respected_in_chunk(self):
        hierarchy = small_hierarchy()
        chunk = TraceChunk([0x100, 0x200], cores=[0, 1])
        hierarchy.access_chunk(chunk)
        assert hierarchy.l1s[0].stats.accesses == 1
        assert hierarchy.l1s[1].stats.accesses == 1
