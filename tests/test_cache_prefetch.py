"""Tests for the stride prefetcher."""

import pytest

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.cache.prefetch import PrefetchingCache, StridePrefetcher, StreamState
from repro.errors import ConfigurationError
from repro.trace.generators import Region, pointer_chase, sequential_scan
from repro.units import KB


class TestStrideDetection:
    def test_needs_confirmation_before_issuing(self):
        prefetcher = StridePrefetcher(degree=2)
        assert prefetcher.observe(1, 0) == []      # allocate entry
        assert prefetcher.observe(1, 64) == []     # stride learned (transient)
        assert prefetcher.observe(1, 128) == [192, 256]  # confirmed: burst
        assert prefetcher.observe(1, 192) == [320]       # steady: one ahead

    def test_backward_stride(self):
        prefetcher = StridePrefetcher(degree=1)
        for address in (1000, 936, 872):
            prefetcher.observe(1, address)
        assert prefetcher.observe(1, 808) == [744]

    def test_stride_change_resets(self):
        prefetcher = StridePrefetcher(degree=1)
        for address in (0, 64, 128, 192):
            prefetcher.observe(1, address)
        assert prefetcher.observe(1, 1000) == []  # broken stream

    def test_huge_stride_ignored(self):
        prefetcher = StridePrefetcher(degree=1, max_stride=4096)
        prefetcher.observe(1, 0)
        assert prefetcher.observe(1, 1 << 20) == []
        assert prefetcher.observe(1, 2 << 20) == []

    def test_streams_tracked_per_pc(self):
        prefetcher = StridePrefetcher(degree=1)
        # Two interleaved streams at different PCs both reach steady state.
        for i in range(4):
            a = prefetcher.observe(1, i * 64)
            b = prefetcher.observe(2, 10000 + i * 128)
        assert a == [4 * 64]
        assert b == [10000 + 4 * 128]

    def test_table_eviction(self):
        prefetcher = StridePrefetcher(table_size=2)
        prefetcher.observe(1, 0)
        prefetcher.observe(2, 0)
        prefetcher.observe(3, 0)  # evicts pc=1
        assert len(prefetcher._table) == 2
        assert 1 not in prefetcher._table

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            StridePrefetcher(table_size=0)

    def test_zero_stride_noop(self):
        prefetcher = StridePrefetcher()
        prefetcher.observe(1, 100)
        assert prefetcher.observe(1, 100) == []


class TestPrefetchingCache:
    def make(self, size=4 * KB) -> PrefetchingCache:
        cache = SetAssociativeCache(CacheConfig.fully_associative(size))
        return PrefetchingCache(cache, StridePrefetcher(degree=4))

    def test_streaming_misses_mostly_covered(self):
        """On a long streaming scan the prefetcher eliminates most misses."""
        trace = sequential_scan(Region(0, 1 << 20), count=8192, stride=64, pc=0x400)
        with_prefetch = self.make()
        with_prefetch.access_chunk(trace)
        without = SetAssociativeCache(CacheConfig.fully_associative(4 * KB))
        without.access_chunk(trace)
        assert with_prefetch.cache.stats.misses < 0.2 * without.stats.misses
        assert with_prefetch.coverage > 0.8

    def test_pointer_chase_not_covered(self):
        trace = pointer_chase(Region(0, 1 << 20), count=4096, node_size=64, pc=0x500)
        prefetching = self.make()
        prefetching.access_chunk(trace)
        assert prefetching.coverage < 0.2

    def test_accuracy_on_stream(self):
        trace = sequential_scan(Region(0, 1 << 20), count=4096, stride=64, pc=0x600)
        prefetching = self.make()
        prefetching.access_chunk(trace)
        assert prefetching.prefetcher.stats.accuracy > 0.8

    def test_prefetches_counted_in_cache_stats(self):
        trace = sequential_scan(Region(0, 1 << 18), count=2048, stride=64, pc=1)
        prefetching = self.make()
        prefetching.access_chunk(trace)
        assert prefetching.cache.stats.prefetches > 0
