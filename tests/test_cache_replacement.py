"""Tests for replacement policies."""

import pytest

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)


class TestLRU:
    def test_hit_and_miss(self):
        policy = LRUPolicy(num_sets=1, associativity=2)
        assert policy.lookup(0, 1) == (False, None)
        assert policy.lookup(0, 1) == (True, None)

    def test_evicts_least_recent(self):
        policy = LRUPolicy(1, 2)
        policy.lookup(0, 1)
        policy.lookup(0, 2)
        policy.lookup(0, 1)  # 1 becomes MRU, 2 is LRU
        hit, evicted = policy.lookup(0, 3)
        assert not hit and evicted == 2

    def test_invalidate(self):
        policy = LRUPolicy(1, 2)
        policy.lookup(0, 1)
        assert policy.invalidate(0, 1)
        assert not policy.invalidate(0, 1)
        assert not policy.contains(0, 1)

    def test_flush(self):
        policy = LRUPolicy(2, 2)
        policy.lookup(0, 1)
        policy.lookup(1, 2)
        policy.flush()
        assert not policy.contains(0, 1)
        assert not policy.contains(1, 2)

    def test_sets_are_independent(self):
        policy = LRUPolicy(2, 1)
        policy.lookup(0, 1)
        policy.lookup(1, 2)
        assert policy.contains(0, 1) and policy.contains(1, 2)


class TestFIFO:
    def test_hit_does_not_refresh(self):
        policy = FIFOPolicy(1, 2)
        policy.lookup(0, 1)
        policy.lookup(0, 2)
        policy.lookup(0, 1)  # hit: does NOT move 1 to the back
        hit, evicted = policy.lookup(0, 3)
        assert not hit and evicted == 1  # oldest insertion evicted

    def test_lru_differs_from_fifo(self):
        """The scenario above distinguishes the two policies."""
        lru = LRUPolicy(1, 2)
        lru.lookup(0, 1)
        lru.lookup(0, 2)
        lru.lookup(0, 1)
        _, evicted = lru.lookup(0, 3)
        assert evicted == 2


class TestRandom:
    def test_deterministic_with_seed(self):
        results = []
        for _ in range(2):
            policy = RandomPolicy(1, 2, seed=42)
            policy.lookup(0, 1)
            policy.lookup(0, 2)
            _, evicted = policy.lookup(0, 3)
            results.append(evicted)
        assert results[0] == results[1]

    def test_fills_free_ways_first(self):
        policy = RandomPolicy(1, 4)
        for tag in range(4):
            _, evicted = policy.lookup(0, tag)
            assert evicted is None


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRUPolicy(1, 3)

    def test_basic_hit(self):
        policy = TreePLRUPolicy(1, 4)
        policy.lookup(0, 1)
        hit, _ = policy.lookup(0, 1)
        assert hit

    def test_never_evicts_most_recent(self):
        policy = TreePLRUPolicy(1, 4)
        for tag in range(4):
            policy.lookup(0, tag)
        # 3 was just touched; the victim must not be 3.
        _, evicted = policy.lookup(0, 99)
        assert evicted != 3

    def test_plru_approximates_lru_on_sequential(self):
        """On a cyclic pattern larger than the set, both thrash identically."""
        plru = TreePLRUPolicy(1, 4)
        lru = LRUPolicy(1, 4)
        plru_hits = lru_hits = 0
        for _ in range(4):
            for tag in range(6):
                if plru.lookup(0, tag)[0]:
                    plru_hits += 1
                if lru.lookup(0, tag)[0]:
                    lru_hits += 1
        assert lru_hits == 0  # classic LRU cyclic thrash
        assert plru_hits >= 0  # PLRU may do no worse


class TestMakePolicy:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy),
        ("fifo", FIFOPolicy),
        ("random", RandomPolicy),
        ("plru", TreePLRUPolicy),
    ])
    def test_constructs(self, name, cls):
        assert isinstance(make_policy(name, 4, 4), cls)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU", 1, 1), LRUPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("mru", 1, 1)
