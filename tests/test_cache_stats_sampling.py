"""Tests for cache statistics plumbing and the window sampler."""

import pytest

from repro.cache.sampling import WindowSampler
from repro.cache.stats import CacheStats
from repro.errors import (
    CalibrationError,
    ConfigurationError,
    ProtocolError,
    ReproError,
    TraceError,
)


class TestCacheStats:
    def make(self) -> CacheStats:
        stats = CacheStats()
        stats.note_access(core=0, is_read=True, hit=True)
        stats.note_access(core=0, is_read=True, hit=False)
        stats.note_access(core=1, is_read=False, hit=False)
        return stats

    def test_note_access_accounting(self):
        stats = self.make()
        assert stats.accesses == 3
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.reads == 2 and stats.writes == 1
        assert stats.read_misses == 1 and stats.write_misses == 1
        assert stats.per_core_accesses == {0: 2, 1: 1}
        assert stats.per_core_misses == {0: 1, 1: 1}

    def test_ratios(self):
        stats = self.make()
        assert stats.miss_ratio == pytest.approx(2 / 3)
        assert stats.hit_ratio == pytest.approx(1 / 3)
        assert CacheStats().miss_ratio == 0.0
        assert CacheStats().hit_ratio == 0.0

    def test_mpki_apki(self):
        stats = self.make()
        assert stats.mpki(1000) == 2.0
        assert stats.apki(1000) == 3.0
        assert stats.mpki(0) == 0.0

    def test_merge_sums_everything(self):
        merged = self.make().merge(self.make())
        assert merged.accesses == 6
        assert merged.per_core_accesses == {0: 4, 1: 2}
        assert merged.per_core_misses == {0: 2, 1: 2}

    def test_snapshot_is_independent(self):
        stats = self.make()
        snapshot = stats.snapshot()
        stats.note_access(0, True, False)
        assert snapshot.accesses == 3
        assert stats.accesses == 4

    def test_delta(self):
        stats = self.make()
        earlier = stats.snapshot()
        stats.note_access(0, True, False)
        stats.note_access(0, True, True)
        delta = stats.delta(earlier)
        assert delta.accesses == 2
        assert delta.misses == 1

    def test_delta_preserves_per_core_counters(self):
        """Regression: delta used to drop the per-core dictionaries."""
        stats = self.make()
        earlier = stats.snapshot()
        stats.note_access(core=0, is_read=True, hit=False)
        stats.note_access(core=2, is_read=True, hit=True)
        stats.note_access(core=2, is_read=False, hit=False)
        delta = stats.delta(earlier)
        assert delta.per_core_accesses == {0: 1, 2: 2}
        assert delta.per_core_misses == {0: 1, 2: 1}
        # Core 1 was active before the window but not inside it, so it
        # must be omitted — the same dict note_access would have built.
        assert 1 not in delta.per_core_accesses

    def test_note_batch_matches_note_access(self):
        """The vectorized accounting equals the per-access accounting."""
        import numpy as np

        kinds = np.array([0, 1, 0, 0, 1, 0], dtype=np.uint8)
        cores = np.array([0, 0, 1, 2, 1, 0], dtype=np.uint16)
        hits = np.array([True, False, False, True, True, False])
        batched = CacheStats()
        batched.note_batch(kinds, cores, hits)
        reference = CacheStats()
        for kind, core, hit in zip(kinds, cores, hits):
            reference.note_access(int(core), int(kind) == 0, bool(hit))
        assert batched == reference

    def test_note_batch_scalar_core(self):
        import numpy as np

        kinds = np.array([0, 0, 1], dtype=np.uint8)
        hits = np.array([False, True, False])
        stats = CacheStats()
        stats.note_batch(kinds, 3, hits)
        assert stats.per_core_accesses == {3: 3}
        assert stats.per_core_misses == {3: 2}


class TestWindowSampler:
    def make(self) -> tuple[WindowSampler, CacheStats]:
        # 1000 cycles per window for easy arithmetic.
        sampler = WindowSampler(frequency_hz=2e6, interval_us=500.0)
        assert sampler.cycles_per_window == 1000
        return sampler, CacheStats()

    def feed(self, stats: CacheStats, accesses: int, misses: int) -> None:
        for i in range(accesses):
            stats.note_access(0, True, hit=i >= misses)

    def test_single_boundary(self):
        sampler, stats = self.make()
        self.feed(stats, 10, 4)
        sampler.advance(1000, 500, stats)
        assert len(sampler.samples) == 1
        sample = sampler.samples[0]
        assert sample.accesses == 10 and sample.misses == 4
        assert sample.instructions == 500
        assert sample.mpki == pytest.approx(8.0)

    def test_coarse_message_emits_multiple_windows(self):
        """One cycles-completed message may cross several boundaries."""
        sampler, stats = self.make()
        self.feed(stats, 6, 2)
        sampler.advance(3500, 900, stats)
        assert len(sampler.samples) == 3
        # All activity lands in the first emitted window; later windows
        # carry zero deltas.
        assert sampler.samples[0].misses == 2
        assert sampler.samples[1].accesses == 0

    def test_finalize_partial_window(self):
        sampler, stats = self.make()
        self.feed(stats, 4, 1)
        sampler.advance(1000, 100, stats)
        self.feed(stats, 3, 3)
        sampler.finalize(1400, 150, stats)
        assert len(sampler.samples) == 2
        assert sampler.samples[1].accesses == 3
        assert sampler.samples[1].cycles == 400

    def test_finalize_empty_tail_suppressed(self):
        sampler, stats = self.make()
        self.feed(stats, 2, 1)
        sampler.advance(1000, 100, stats)
        sampler.finalize(1000, 100, stats)
        assert len(sampler.samples) == 1

    def test_window_miss_ratio(self):
        sampler, stats = self.make()
        self.feed(stats, 10, 5)
        sampler.advance(1000, 100, stats)
        assert sampler.samples[0].miss_ratio == pytest.approx(0.5)

    def test_exact_boundary_closes_window_with_its_delta(self):
        """A report landing exactly on a boundary closes the window and
        the activity it reports is attributed to the closing window —
        the ``>=`` contract both the scalar and batched paths share."""
        sampler, stats = self.make()
        self.feed(stats, 5, 2)
        sampler.advance(999, 50, stats)
        assert sampler.samples == []  # one cycle short: window still open
        self.feed(stats, 1, 0)
        sampler.advance(1000, 60, stats)  # clock == boundary
        assert len(sampler.samples) == 1
        sample = sampler.samples[0]
        assert sample.accesses == 6 and sample.misses == 2
        assert sample.instructions == 60 and sample.cycles == 1000
        # Nothing carried past the boundary: the tail window is empty.
        sampler.finalize(1000, 60, stats)
        assert len(sampler.samples) == 1

    def test_fractional_window_width_does_not_drift(self):
        """3.333 MHz x 500 µs = 1666.5 cycles/window.  Truncating once
        and striding by 1666 gains a spurious extra window every ~3333
        windows; the boundary series must instead track ceil(k*width),
        the reference host-pull integration."""
        import math

        sampler = WindowSampler(frequency_hz=3.333e6, interval_us=500.0)
        stats = CacheStats()
        width = 3.333e6 * 500.0 * 1e-6
        assert width == 1666.5
        total = 10_000_000
        for clock in range(1666, total + 1, 1666):
            sampler.advance(clock, 0, stats)
        sampler.advance(total, 0, stats)
        assert len(sampler.samples) == math.floor(total / width)  # not 6002
        # Every emitted window ends on a reference boundary.
        assert sum(s.cycles for s in sampler.samples) == math.ceil(
            len(sampler.samples) * width
        )

    def test_integral_window_width_unchanged(self):
        """The default 100 MHz x 500 µs geometry has integral width;
        its boundary series must be exactly k * cycles_per_window."""
        sampler = WindowSampler()  # the emulator's default
        assert sampler.cycles_per_window == 50_000
        stats = CacheStats()
        sampler.advance(150_000, 0, stats)
        assert [s.cycles for s in sampler.samples] == [50_000] * 3

    def test_advance_series_matches_advance_loop(self):
        """The batched searchsorted aggregation equals the per-report
        loop on a randomized progress series, finalize tail included."""
        import numpy as np

        def cumulative_stats(accesses: int, misses: int) -> CacheStats:
            stats = CacheStats()
            stats.accesses = accesses
            stats.misses = misses
            stats.hits = accesses - misses
            return stats

        rng = np.random.default_rng(9)
        reports = 48
        cycles = np.cumsum(rng.integers(0, 2500, size=reports))
        accesses = np.cumsum(rng.integers(0, 50, size=reports))
        misses = (accesses * 2) // 5
        instructions = np.cumsum(rng.integers(0, 900, size=reports))

        loop = WindowSampler(frequency_hz=2e6, interval_us=500.0)
        for i in range(reports):
            loop.advance(
                int(cycles[i]),
                int(instructions[i]),
                cumulative_stats(int(accesses[i]), int(misses[i])),
            )
        batched = WindowSampler(frequency_hz=2e6, interval_us=500.0)
        batched.advance_series(cycles, instructions, accesses, misses)
        assert batched.samples == loop.samples
        final = cumulative_stats(int(accesses[-1]) + 3, int(misses[-1]) + 1)
        loop.finalize(int(cycles[-1]) + 123, int(instructions[-1]) + 5, final)
        batched.finalize(int(cycles[-1]) + 123, int(instructions[-1]) + 5, final)
        assert batched.samples == loop.samples

    def test_advance_series_refused_in_interpolate_mode(self):
        sampler = WindowSampler(frequency_hz=2e6, interpolate=True)
        with pytest.raises(ConfigurationError):
            sampler.advance_series([1000], [0], [0], [0])


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [ConfigurationError, ProtocolError, TraceError, CalibrationError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)
