"""Checkpoint/resume: an interrupted run equals an uninterrupted one.

The contract under test is bit-identity: a run killed mid-flight (the
in-process analog of SIGKILL — a ``BaseException`` no handler can eat,
raised *after* a snapshot has landed on disk, exactly the state a killed
process leaves behind thanks to the atomic write-rename) and resumed in
a fresh platform must produce a ``CoSimResult`` equal field-for-field to
a run that was never interrupted — window samples, per-core splits, and
audit report included.
"""

import os

import numpy as np
import pytest

import repro.core.cosim as cosim_module
import repro.harness.replay as replay_module
from repro.cache.emulator import DragonheadConfig
from repro.checkpoint import read_snapshot, write_snapshot
from repro.checkpoint.snapshot import MAGIC
from repro.core.cosim import CoSimPlatform
from repro.errors import CheckpointError
from repro.faults.spec import parse_fault_spec
from repro.harness.replay import capture_replay_log, replay, replay_map
from repro.harness.supervisor import SupervisorPolicy, supervise
from repro.units import MB
from repro.workloads.registry import get_workload


class SimulatedKill(BaseException):
    """Stands in for SIGKILL: not an Exception, so nothing catches it."""


WORKLOADS = ("FIMI", "RSEARCH", "MDS")
GEOMETRIES = (
    {"cache_size": 1 * MB, "line_size": 64},
    {"cache_size": 2 * MB, "line_size": 128},
)


def small_guest(name: str):
    return get_workload(name).synthetic_guest(
        accesses_per_thread=6000, scale=1 / 256
    )


def kill_after(monkeypatch, module, snapshots: int):
    """Patch ``module.write_snapshot`` to die after N snapshots land."""
    real = write_snapshot
    count = {"n": 0}

    def dying(path, state, identity):
        real(path, state, identity)
        count["n"] += 1
        if count["n"] >= snapshots:
            raise SimulatedKill()

    monkeypatch.setattr(module, "write_snapshot", dying)
    return count


class TestLiveRunResume:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("geometry", GEOMETRIES, ids=("1MB-64B", "2MB-128B"))
    def test_killed_and_resumed_equals_uninterrupted(
        self, tmp_path, monkeypatch, workload, geometry
    ):
        config = DragonheadConfig(**geometry)
        path = str(tmp_path / "run.ckpt")
        fresh = CoSimPlatform(config, quantum=512).run(
            small_guest(workload), 2, audit="full"
        )

        count = kill_after(monkeypatch, cosim_module, 2)
        with pytest.raises(SimulatedKill):
            CoSimPlatform(config, quantum=512).run(
                small_guest(workload),
                2,
                checkpoint_every=2048,
                checkpoint_path=path,
                audit="full",
            )
        assert count["n"] == 2 and os.path.exists(path)

        monkeypatch.setattr(cosim_module, "write_snapshot", write_snapshot)
        resumed = CoSimPlatform(config, quantum=512).run(
            small_guest(workload),
            2,
            checkpoint_every=2048,
            resume_from=path,
            audit="full",
        )
        assert resumed == fresh
        assert resumed.audit is not None and resumed.audit.ok
        assert not os.path.exists(path)  # removed on completion

    def test_checkpoint_removed_after_clean_run(self, tmp_path):
        path = str(tmp_path / "clean.ckpt")
        CoSimPlatform(DragonheadConfig(cache_size=1 * MB), quantum=512).run(
            small_guest("FIMI"), 2, checkpoint_every=2048, checkpoint_path=path
        )
        assert not os.path.exists(path)

    def test_missing_resume_file_starts_from_scratch(self, tmp_path):
        config = DragonheadConfig(cache_size=1 * MB)
        fresh = CoSimPlatform(config, quantum=512).run(small_guest("FIMI"), 2)
        cold = CoSimPlatform(config, quantum=512).run(
            small_guest("FIMI"),
            2,
            checkpoint_every=1 << 30,
            resume_from=str(tmp_path / "never-written.ckpt"),
        )
        assert cold == fresh

    def test_nonpositive_interval_rejected(self, tmp_path):
        platform = CoSimPlatform(DragonheadConfig(cache_size=1 * MB))
        with pytest.raises(CheckpointError, match="positive"):
            platform.run(
                small_guest("FIMI"),
                2,
                checkpoint_every=0,
                checkpoint_path=str(tmp_path / "x.ckpt"),
            )

    def test_bus_fault_injection_excludes_checkpointing(self, tmp_path):
        spec = parse_fault_spec("seed=3,drop-data=0.01")
        platform = CoSimPlatform(
            DragonheadConfig(cache_size=1 * MB), strict=False, fault_spec=spec
        )
        with pytest.raises(CheckpointError, match="fault injection"):
            platform.run(
                small_guest("FIMI"),
                2,
                checkpoint_every=1024,
                checkpoint_path=str(tmp_path / "x.ckpt"),
            )


class TestReplayResume:
    def test_killed_and_resumed_replay_equals_fresh(self, tmp_path, monkeypatch):
        log = capture_replay_log(small_guest("FIMI"), 2, quantum=512)
        config = DragonheadConfig(cache_size=1 * MB)
        path = str(tmp_path / "replay.ckpt")
        fresh = replay(log, config, audit="sample")

        kill_after(monkeypatch, replay_module, 2)
        with pytest.raises(SimulatedKill):
            replay(
                log,
                config,
                audit="sample",
                checkpoint_every=2048,
                checkpoint_path=path,
            )
        assert os.path.exists(path)

        monkeypatch.setattr(replay_module, "write_snapshot", write_snapshot)
        resumed = replay(
            log,
            config,
            audit="sample",
            checkpoint_every=2048,
            resume_from=path,
        )
        assert resumed == fresh
        assert not os.path.exists(path)

    def test_mid_batch_snapshot_resumes_to_batched_result(
        self, tmp_path, monkeypatch
    ):
        """A checkpoint cut strictly inside the access stream — mid-way
        through what the batched pipeline processes as one pass — must
        resume (on the per-event path) to the exact result the batched
        one-shot replay produces: same windows, same per-core splits,
        same audit verdict."""
        log = capture_replay_log(small_guest("FIMI"), 2, quantum=512)
        config = DragonheadConfig(cache_size=1 * MB)
        path = str(tmp_path / "midbatch.ckpt")
        batched = replay(log, config, audit="sample")  # fast path: one batch

        kill_after(monkeypatch, replay_module, 1)
        with pytest.raises(SimulatedKill):
            replay(
                log, config, audit="sample", checkpoint_every=1024,
                checkpoint_path=path,
            )
        snapshot = read_snapshot(path)
        position = int(snapshot["replay"]["start"])
        assert 0 < position < log.accesses  # genuinely mid-stream

        monkeypatch.setattr(replay_module, "write_snapshot", write_snapshot)
        resumed = replay(
            log, config, audit="sample", checkpoint_every=1024, resume_from=path
        )
        assert resumed == batched
        assert resumed.audit is not None and resumed.audit.ok

    def test_resume_against_different_config_rejected(self, tmp_path, monkeypatch):
        log = capture_replay_log(small_guest("FIMI"), 2, quantum=512)
        path = str(tmp_path / "replay.ckpt")
        kill_after(monkeypatch, replay_module, 1)
        with pytest.raises(SimulatedKill):
            replay(
                log,
                DragonheadConfig(cache_size=1 * MB),
                checkpoint_every=2048,
                checkpoint_path=path,
            )
        monkeypatch.setattr(replay_module, "write_snapshot", write_snapshot)
        with pytest.raises(CheckpointError, match="identity"):
            replay(
                log,
                DragonheadConfig(cache_size=2 * MB),
                checkpoint_every=2048,
                resume_from=path,
            )


class TestSnapshotDamage:
    def _checkpoint(self, tmp_path, monkeypatch) -> str:
        path = str(tmp_path / "victim.ckpt")
        kill_after(monkeypatch, cosim_module, 1)
        with pytest.raises(SimulatedKill):
            CoSimPlatform(DragonheadConfig(cache_size=1 * MB), quantum=512).run(
                small_guest("FIMI"), 2, checkpoint_every=2048, checkpoint_path=path
            )
        monkeypatch.setattr(cosim_module, "write_snapshot", write_snapshot)
        return path

    def _resume(self, path):
        return CoSimPlatform(DragonheadConfig(cache_size=1 * MB), quantum=512).run(
            small_guest("FIMI"), 2, checkpoint_every=2048, resume_from=path
        )

    def test_bad_magic_rejected(self, tmp_path, monkeypatch):
        path = self._checkpoint(tmp_path, monkeypatch)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(b"XXXX" + data[len(MAGIC):])
        with pytest.raises(CheckpointError, match="magic"):
            self._resume(path)

    def test_truncation_rejected(self, tmp_path, monkeypatch):
        path = self._checkpoint(tmp_path, monkeypatch)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            self._resume(path)

    def test_payload_bit_flip_rejected(self, tmp_path, monkeypatch):
        path = self._checkpoint(tmp_path, monkeypatch)
        data = bytearray(open(path, "rb").read())
        data[-10] ^= 0x40  # flip one payload bit; the CRC must notice
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(CheckpointError, match="CRC-32"):
            self._resume(path)

    def test_read_snapshot_roundtrip(self, tmp_path):
        path = str(tmp_path / "roundtrip.ckpt")
        state = {"arr": np.arange(5, dtype=np.uint64), "n": 7}
        write_snapshot(path, state, {"who": "test"})
        back = read_snapshot(path, expect_identity={"who": "test"})
        assert back["n"] == 7
        np.testing.assert_array_equal(back["arr"], state["arr"])
        with pytest.raises(CheckpointError, match="identity"):
            read_snapshot(path, expect_identity={"who": "someone-else"})


class TestSupervisedResume:
    def test_point_resumes_mid_run_after_worker_death(
        self, tmp_path, monkeypatch
    ):
        log = capture_replay_log(small_guest("FIMI"), 2, quantum=512)
        config = DragonheadConfig(cache_size=1 * MB)
        fresh = replay(log, config)

        monkeypatch.setattr(replay_module, "DEFAULT_CHECKPOINT_EVERY", 2048)
        real = write_snapshot
        count = {"n": 0}

        def dying(path, state, identity):
            real(path, state, identity)
            count["n"] += 1
            if count["n"] == 2:
                raise RuntimeError("simulated worker death")

        monkeypatch.setattr(replay_module, "write_snapshot", dying)
        policy = SupervisorPolicy(retries=2, backoff_base=0.0)
        with supervise(policy, checkpoint_dir=tmp_path / "ckpts") as ctx:
            results = replay_map(log, [config], jobs=1)
        assert results[0] == fresh
        assert ctx.counts.get("point-retry") == 1
        # The retry picked up the snapshot instead of starting over.
        assert ctx.counts.get("point-resumed") == 1
        assert not any(os.scandir(tmp_path / "ckpts"))

    def test_checkpointing_skipped_under_bus_faults(self, tmp_path):
        log = capture_replay_log(small_guest("FIMI"), 2, quantum=512)
        config = DragonheadConfig(cache_size=1 * MB)
        spec = parse_fault_spec("seed=5,drop-data=0.005")
        with supervise(
            SupervisorPolicy(retries=0), checkpoint_dir=tmp_path / "ckpts"
        ):
            results = replay_map(log, [config], jobs=1, spec=spec, lenient=True)
        # The point ran (unresumed) rather than erroring out.
        assert results[0].degraded
