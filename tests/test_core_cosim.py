"""Integration tests: SoftSDV + Dragonhead co-simulation."""

import pytest

from repro.cache.emulator import DragonheadConfig
from repro.core.cosim import CoSimPlatform, cosim_cache_sweep
from repro.core.softsdv import MAX_HW_THREADS, GuestWorkload, SoftSDV
from repro.core.fsb import FrontSideBus
from repro.errors import ConfigurationError
from repro.trace.generators import Region, cyclic_scan
from repro.trace.stream import chunk_stream
from repro.units import KB, MB


def scan_workload(region_kb: int = 256, passes: int = 4) -> GuestWorkload:
    """Each thread cyclically scans its own private region."""

    def thread_streams(n):
        return [
            chunk_stream(
                cyclic_scan(
                    Region(0x1000_0000 + i * 0x100_0000, region_kb * 1024),
                    passes=passes,
                    stride=64,
                )
            )
            for i in range(n)
        ]

    return GuestWorkload(name="scan", thread_streams=thread_streams)


class TestSoftSDV:
    def test_thread_count_limit(self):
        softsdv = SoftSDV(FrontSideBus())
        with pytest.raises(ConfigurationError):
            softsdv.run_workload(scan_workload(), MAX_HW_THREADS + 1)

    def test_stream_count_mismatch_rejected(self):
        bad = GuestWorkload(name="bad", thread_streams=lambda n: [])
        with pytest.raises(ConfigurationError):
            SoftSDV(FrontSideBus()).run_workload(bad, 2)


class TestCoSimPlatform:
    def test_run_produces_synchronized_stats(self):
        platform = CoSimPlatform(DragonheadConfig(cache_size=1 * MB))
        result = platform.run(scan_workload(region_kb=128, passes=2), cores=2)
        # 2 threads x 128KB/64B x 2 passes accesses
        assert result.accesses == 2 * 2048 * 2
        assert result.instructions == result.accesses * 2
        assert result.mpki > 0

    def test_os_noise_filtered(self):
        platform = CoSimPlatform(
            DragonheadConfig(cache_size=1 * MB), boot_noise_accesses=500
        )
        result = platform.run(scan_workload(region_kb=64, passes=1), cores=1)
        assert result.filtered == 1000  # 500 before START + 500 after STOP
        assert result.accesses == 1024  # noise not emulated

    def test_cold_misses_only_when_fits(self):
        platform = CoSimPlatform(DragonheadConfig(cache_size=4 * MB))
        result = platform.run(scan_workload(region_kb=256, passes=4), cores=2)
        assert result.llc_stats.misses == 2 * 4096  # cold lines only

    def test_thrash_when_oversubscribed(self):
        platform = CoSimPlatform(DragonheadConfig(cache_size=1 * MB))
        result = platform.run(scan_workload(region_kb=1024, passes=2), cores=2)
        assert result.llc_stats.miss_ratio > 0.95

    def test_samples_collected(self):
        platform = CoSimPlatform(DragonheadConfig(cache_size=1 * MB))
        result = platform.run(scan_workload(region_kb=256, passes=2), cores=2)
        assert len(result.samples) >= 1
        assert sum(s.accesses for s in result.samples) == result.accesses


class TestCoSimSweep:
    def test_sweep_is_monotone_for_scans(self):
        results = cosim_cache_sweep(
            scan_workload(region_kb=768, passes=3),
            cores=2,
            cache_sizes=[1 * MB, 2 * MB, 4 * MB],
        )
        mpkis = [mpki for _, mpki in results]
        assert mpkis == sorted(mpkis, reverse=True)
        # 1MB < 2x768KB working set → thrash; 2MB and up capture
        # everything but cold misses.
        assert mpkis[0] > 2.5 * mpkis[2]
        assert mpkis[1] == pytest.approx(mpkis[2])
