"""Tests for the front-side bus and the DEX scheduler."""

import pytest

from repro.core.dex import DEXScheduler, VirtualCore
from repro.core.fsb import FrontSideBus, FSBTransaction
from repro.errors import ConfigurationError
from repro.protocol import MessageCodec, MessageKind
from repro.trace.record import AccessKind, TraceChunk
from repro.trace.stream import chunk_stream


class RecordingSnooper:
    """Captures everything that crosses the bus."""

    def __init__(self):
        self.transactions: list[FSBTransaction] = []
        self.chunks: list[TraceChunk] = []

    def snoop(self, transaction):
        self.transactions.append(transaction)

    def snoop_chunk(self, chunk):
        self.chunks.append(chunk)


class TestFrontSideBus:
    def test_snoopers_see_transactions(self):
        bus = FrontSideBus()
        snooper = RecordingSnooper()
        bus.attach(snooper)
        bus.issue(FSBTransaction(address=0x100))
        assert len(snooper.transactions) == 1
        assert bus.transactions_issued == 1

    def test_detach(self):
        bus = FrontSideBus()
        snooper = RecordingSnooper()
        bus.attach(snooper)
        bus.detach(snooper)
        bus.issue(FSBTransaction(address=0x100))
        assert snooper.transactions == []

    def test_chunk_issue(self):
        bus = FrontSideBus()
        snooper = RecordingSnooper()
        bus.attach(snooper)
        bus.issue_chunk(TraceChunk([1, 2, 3]))
        assert bus.transactions_issued == 3
        assert len(snooper.chunks) == 1

    def test_message_transaction_flag(self):
        from repro.protocol import Message, MessageCodec, MessageKind

        address = MessageCodec.encode(Message(MessageKind.CORE_ID, 1))[0]
        assert FSBTransaction(address=address).is_message
        assert not FSBTransaction(address=0x1000).is_message


def run_scheduler(streams, quantum=4, **kwargs):
    bus = FrontSideBus()
    snooper = RecordingSnooper()
    bus.attach(snooper)
    cores = [VirtualCore(core_id=i, stream=s) for i, s in enumerate(streams)]
    scheduler = DEXScheduler(bus, cores, quantum=quantum, **kwargs)
    scheduler.run()
    return scheduler, snooper


def decoded_messages(snooper):
    codec = MessageCodec()
    result = []
    for transaction in snooper.transactions:
        if transaction.is_message:
            message = codec.decode(transaction.address)
            if message is not None:
                result.append(message)
    return result


class TestDEXScheduler:
    def test_protocol_brackets_run(self):
        _, snooper = run_scheduler([[TraceChunk([1, 2])]])
        kinds = [m.kind for m in decoded_messages(snooper)]
        assert kinds[0] is MessageKind.START_EMULATION
        assert kinds[-1] is MessageKind.STOP_EMULATION

    def test_core_id_before_each_slice(self):
        _, snooper = run_scheduler(
            [[TraceChunk(list(range(8)))], [TraceChunk(list(range(100, 108)))]],
            quantum=4,
        )
        core_ids = [
            m.payload
            for m in decoded_messages(snooper)
            if m.kind is MessageKind.CORE_ID
        ]
        assert core_ids == [0, 1, 0, 1]

    def test_all_transactions_delivered_tagged(self):
        _, snooper = run_scheduler(
            [[TraceChunk(list(range(10)))], [TraceChunk(list(range(100, 105)))]],
            quantum=4,
        )
        merged = TraceChunk.concatenate(snooper.chunks)
        assert len(merged) == 15
        core0 = sorted(int(a) for a in merged.addresses[merged.cores == 0])
        assert core0 == list(range(10))

    def test_instruction_accounting(self):
        scheduler, _ = run_scheduler([[TraceChunk(list(range(10)))]], quantum=4)
        # Default 2 instructions per access.
        assert scheduler.instructions_retired == 20

    def test_progress_messages_monotone(self):
        _, snooper = run_scheduler([[TraceChunk(list(range(20)))]], quantum=4)
        retired = [
            m.payload
            for m in decoded_messages(snooper)
            if m.kind is MessageKind.INSTRUCTIONS_RETIRED
        ]
        assert retired == sorted(retired)
        assert len(retired) == 5  # one per slice

    def test_noise_outside_window(self):
        _, snooper = run_scheduler(
            [[TraceChunk([1, 2])]], quantum=4, os_noise_accesses=16
        )
        # Noise is issued before START and after STOP: the first and
        # last chunks on the bus are the 16-access noise bursts.
        assert len(snooper.chunks[0]) == 16
        assert len(snooper.chunks[-1]) == 16
        assert len(snooper.chunks) == 3  # noise, workload slice, noise

    def test_elapsed_time(self):
        scheduler, _ = run_scheduler(
            [[TraceChunk(list(range(10)))]],
            quantum=10,
            cycles_per_instruction=2.0,
            frequency_hz=1e9,
        )
        assert scheduler.cycles_completed == 40
        assert scheduler.elapsed_seconds == pytest.approx(4e-8)

    def test_rejects_empty_cores(self):
        with pytest.raises(ConfigurationError):
            DEXScheduler(FrontSideBus(), [])

    def test_rejects_duplicate_ids(self):
        cores = [
            VirtualCore(0, [TraceChunk([1])]),
            VirtualCore(0, [TraceChunk([2])]),
        ]
        with pytest.raises(ConfigurationError):
            DEXScheduler(FrontSideBus(), cores)

    def test_rejects_bad_instruction_ratio(self):
        with pytest.raises(ConfigurationError):
            VirtualCore(0, [TraceChunk([1])], instructions_per_access=0.5)

    def test_quantum_slicing_shape(self):
        scheduler, snooper = run_scheduler(
            [[c for c in chunk_stream(TraceChunk(list(range(11))), 3)]], quantum=4
        )
        # 11 accesses at quantum 4 → slices of 4, 4, 3.
        assert [len(c) for c in snooper.chunks] == [4, 4, 3]
        assert scheduler.slices_executed == 3
