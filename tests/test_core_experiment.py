"""Tests for experiment configurations and sweep drivers."""

import pytest

from repro.core.experiment import (
    ALL_CMPS,
    LCMP,
    MCMP,
    SCMP,
    CMPConfig,
    cache_size_sweep,
    line_size_sweep,
    working_set_knee,
)
from repro.units import MB
from repro.workloads.profiles import memory_model


class TestCMPConfigs:
    def test_paper_design_points(self):
        assert SCMP.cores == 8
        assert MCMP.cores == 16
        assert LCMP.cores == 32

    def test_all_cmps_ordered(self):
        assert [c.cores for c in ALL_CMPS] == [8, 16, 32]

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            CMPConfig("bad", 0)

    def test_threads_equal_cores(self):
        assert SCMP.threads == 8


class TestSweeps:
    def test_cache_sweep_axis(self):
        sweep = cache_size_sweep(memory_model("FIMI"), SCMP)
        assert [s for s, _ in sweep] == [
            4 * MB, 8 * MB, 16 * MB, 32 * MB, 64 * MB, 128 * MB, 256 * MB
        ]

    def test_line_sweep_axis(self):
        sweep = line_size_sweep(memory_model("SHOT"))
        assert [l for l, _ in sweep] == [64, 128, 256, 512, 1024, 2048, 4096]

    def test_cache_sweep_monotone(self):
        for name in ("SNP", "SHOT", "FIMI"):
            sweep = cache_size_sweep(memory_model(name), SCMP)
            mpkis = [m for _, m in sweep]
            assert all(a >= b - 1e-9 for a, b in zip(mpkis, mpkis[1:]))


class TestWorkingSetKnee:
    def test_detects_step(self):
        sweep = [(4 * MB, 10.0), (8 * MB, 9.8), (16 * MB, 2.0), (32 * MB, 1.9)]
        assert working_set_knee(sweep) == 16 * MB

    def test_flat_curve_has_no_knee(self):
        sweep = [(4 * MB, 10.0), (8 * MB, 9.9), (16 * MB, 9.8)]
        assert working_set_knee(sweep) is None

    def test_first_knee_wins(self):
        sweep = [(4 * MB, 10.0), (8 * MB, 4.0), (16 * MB, 1.0)]
        assert working_set_knee(sweep) == 8 * MB
