"""Tests for the DRAM-cache study and the 128-core projection."""

import pytest

from repro.harness import projection
from repro.perf.dramcache import (
    DRAM_HIT_LATENCY,
    MEMORY_LATENCY_CYCLES,
    dram_cache_study,
    evaluate_dram_cache,
)
from repro.workloads.profiles import WORKLOAD_NAMES


class TestDramCacheModel:
    def test_stall_accounting(self):
        result = evaluate_dram_cache("FIMI", threads=128)
        dram_hits = result.sram_mpki - result.dram_mpki
        expected = (
            dram_hits * DRAM_HIT_LATENCY + result.dram_mpki * MEMORY_LATENCY_CYCLES
        )
        assert result.stall_with == pytest.approx(expected)
        assert result.stall_with <= result.stall_without + 1e-9

    def test_saving_never_negative(self):
        for result in dram_cache_study():
            assert result.stall_saving_percent >= -1e-9

    def test_study_covers_all_workloads(self):
        names = [r.workload for r in dram_cache_study()]
        assert names == list(WORKLOAD_NAMES)


class TestPaperProjection:
    """Section 4.3: 'we believe that 5 of the 8 workloads will benefit
    from a large DRAM cache when scaled to a 128-core CMP.'"""

    def test_five_of_eight_benefit(self):
        rows = projection.generate(threads=128)
        beneficiaries = {r.workload for r in rows if r.dram_candidate}
        assert beneficiaries == set(projection.PAPER_DRAM_BENEFICIARIES)
        assert len(beneficiaries) == 5

    def test_category_a_small_llc_sufficient(self):
        """'For these workloads, a small LLC, such as 8MB, will deliver a
        good memory subsystem performance' — the static-working-set trio."""
        rows = {r.workload: r for r in projection.generate()}
        for name in ("SVM-RFE", "PLSA", "SNP"):
            assert not rows[name].dram_candidate

    def test_category_c_working_sets_explode(self):
        """SHOT and VIEWTYPE footprints scale linearly to 128 cores."""
        rows = {r.workload: r for r in projection.generate()}
        assert rows["SHOT"].footprint_128 > 256 * 1024 * 1024
        assert rows["VIEWTYPE"].footprint_128 > 128 * 1024 * 1024

    def test_fimi_rsearch_exceed_32mb_at_128_cores(self):
        """'their working set will exceed 32MB on 128 cores.'"""
        from repro.units import MB
        from repro.workloads.profiles import memory_model

        for name in ("FIMI", "RSEARCH"):
            model = memory_model(name)
            assert model.llc_mpki(32 * MB, 64, 128) > model.llc_mpki(256 * MB, 64, 128)

    def test_main_prints(self, capsys):
        projection.main()
        output = capsys.readouterr().out
        assert "5 of 8" in output
        assert "DRAM cache" in output


class TestAblations:
    def test_replacement_policies_close_on_workload_traffic(self):
        from repro.harness.ablations import replacement_policy_ablation

        results = replacement_policy_ablation(accesses=20_000)
        ratios = [r.miss_ratio for r in results]
        by_name = {r.policy: r.miss_ratio for r in results}
        # All policies within a few percent on this traffic; PLRU
        # approximates LRU closely.
        assert max(ratios) - min(ratios) < 0.05
        assert by_name["plru"] == pytest.approx(by_name["lru"], abs=0.01)

    def test_slice_rule_matters_at_small_caches(self):
        from repro.harness.ablations import slice_rule_ablation

        off, on = slice_rule_ablation()
        assert off.mpki_4mb_32c > 2 * on.mpki_4mb_32c

    def test_smoothing_values_reasonable(self):
        from repro.harness.ablations import smoothing_ablation

        for result in smoothing_ablation():
            assert 1.0 < result.jump_ratio < 2.5

    def test_quantum_effect(self):
        from repro.harness.ablations import quantum_ablation

        results = quantum_ablation(
            cores=2,
            region_bytes=640 * 1024,
            passes=4,
            quanta=(1024, 65536),
        )
        small_quantum, large_quantum = results
        # Fine interleaving thrashes; slice-long quanta restore reuse.
        assert small_quantum.mpki > 2 * large_quantum.mpki

    def test_ablations_main_prints(self, capsys):
        from repro.harness import ablations

        ablations.main()
        output = capsys.readouterr().out
        for marker in ("Ablation 1", "Ablation 2", "Ablation 3", "Ablation 4"):
            assert marker in output
