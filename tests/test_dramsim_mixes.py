"""Tests for the DRAM-cache device model and workload mixes."""

import numpy as np
import pytest

from repro.cache.dramsim import DramCacheConfig, DramCacheSim
from repro.errors import ConfigurationError
from repro.trace.generators import Region, cyclic_scan, sequential_scan, uniform_random
from repro.units import KB, MB
from repro.workloads import get_workload
from repro.workloads.mixes import MixEntry, mixed_guest, mixed_llc_mpki, mixed_profile


def small_dram(**overrides) -> DramCacheSim:
    defaults = dict(capacity=1 * MB, line_size=256, associativity=4, banks=4)
    defaults.update(overrides)
    return DramCacheSim(DramCacheConfig(**defaults))


class TestDramCacheConfig:
    def test_rejects_row_smaller_than_line(self):
        with pytest.raises(ConfigurationError):
            DramCacheConfig(row_bytes=128, line_size=256)

    def test_rejects_non_power_of_two_banks(self):
        with pytest.raises(ConfigurationError):
            DramCacheConfig(banks=3)


class TestRowBufferBehaviour:
    def test_streaming_enjoys_row_hits(self):
        """Sequential traffic stays in open rows: the property that makes
        DRAM caches work for the paper's streaming workloads."""
        sim = small_dram()
        trace = sequential_scan(Region(0, 512 * KB), count=2048, stride=256)
        # Warm the contents first so row behaviour is isolated.
        sim.access_chunk(trace)
        warm = DramCacheSim(sim.config)
        warm.access_chunk(trace)
        stats = warm.access_chunk(trace[:0].concatenate([trace]))
        assert stats.row_hit_ratio > 0.8

    def test_random_traffic_thrashes_rows(self):
        sim = small_dram()
        trace = uniform_random(
            Region(0, 1 * MB), count=4000, granule=256, rng=np.random.default_rng(3)
        )
        sim.access_chunk(trace)
        assert sim.stats.row_hit_ratio < 0.2

    def test_latency_ordering(self):
        """content+row hit < content hit w/ row conflict < content miss."""
        config = DramCacheConfig(capacity=1 * MB, line_size=256, banks=4)
        sim = DramCacheSim(config)
        miss_latency = sim.access(0x0)  # cold miss
        conflict_latency = sim.access(0x100000 - 256)  # hit far row? no:
        # Access the same line again: content hit + row hit.
        hit_latency = sim.access(0x0)
        assert hit_latency < miss_latency
        assert hit_latency == config.tag_latency + config.row_hit_latency

    def test_average_latency_accumulates(self):
        sim = small_dram()
        trace = cyclic_scan(Region(0, 128 * KB), passes=3, stride=256)
        sim.access_chunk(trace)
        assert sim.stats.average_latency > 0
        assert sim.stats.accesses == len(trace)

    def test_content_hits_after_warmup(self):
        sim = small_dram()
        trace = cyclic_scan(Region(0, 256 * KB), passes=4, stride=256)
        sim.access_chunk(trace)
        assert sim.stats.content_hit_ratio > 0.7  # 3 of 4 passes hit


class TestMixedGuests:
    def entries(self):
        return [
            MixEntry(get_workload("FIMI"), 2),
            MixEntry(get_workload("MDS"), 2),
        ]

    def test_exact_path_runs(self):
        from repro.cache.emulator import DragonheadConfig
        from repro.core.cosim import CoSimPlatform

        guest = mixed_guest(self.entries(), accesses_per_thread=4096, scale=1 / 512)
        platform = CoSimPlatform(DragonheadConfig(cache_size=1 * MB))
        result = platform.run(guest, cores=4)
        assert result.accesses == 4 * 4096
        assert "FIMI" in result.workload and "MDS" in result.workload

    def test_core_count_mismatch_rejected(self):
        from repro.errors import ConfigurationError

        guest = mixed_guest(self.entries(), accesses_per_thread=512, scale=1 / 512)
        with pytest.raises(ConfigurationError):
            guest.thread_streams(3)

    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            mixed_guest([])

    def test_per_core_instruction_ratios(self):
        guest = mixed_guest(self.entries(), accesses_per_thread=512, scale=1 / 512)
        fimi_ratio = get_workload("FIMI").fsb_instructions_per_access()
        mds_ratio = get_workload("MDS").fsb_instructions_per_access()
        assert guest.instruction_ratio(0) == pytest.approx(fimi_ratio)
        assert guest.instruction_ratio(3) == pytest.approx(mds_ratio)


class TestMixedProfiles:
    def test_mix_between_pure_values(self):
        fimi = get_workload("FIMI")
        mds = get_workload("MDS")
        entries = [MixEntry(fimi, 4), MixEntry(mds, 4)]
        mixed = mixed_llc_mpki(entries, 32 * MB)
        pure_fimi = fimi.model.llc_mpki(32 * MB, 64, 4)
        pure_mds = mds.model.llc_mpki(32 * MB, 64, 4)
        low, high = sorted((pure_fimi, pure_mds))
        assert low <= mixed <= high

    def test_share_shifts_toward_heavier_workload(self):
        fimi = get_workload("FIMI")
        mds = get_workload("MDS")
        light = mixed_llc_mpki([MixEntry(fimi, 6), MixEntry(mds, 2)], 32 * MB)
        heavy = mixed_llc_mpki([MixEntry(fimi, 2), MixEntry(mds, 6)], 32 * MB)
        assert heavy > light  # MDS misses much more

    def test_profile_rate_is_weighted_sum(self):
        fimi = get_workload("FIMI")
        shot = get_workload("SHOT")
        entries = [MixEntry(fimi, 2), MixEntry(shot, 2)]
        profile = mixed_profile(entries)
        expected = 0.5 * fimi.model.profile(64, 2).total_rate + 0.5 * shot.model.profile(64, 2).total_rate
        assert profile.total_rate == pytest.approx(expected)
