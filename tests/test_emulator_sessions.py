"""Tests for emulator session semantics and configuration envelope."""

import numpy as np
import pytest

from repro.cache.emulator import DragonheadConfig, DragonheadEmulator
from repro.core.fsb import FSBTransaction
from repro.protocol import Message, MessageCodec, MessageKind
from repro.trace.generators import Region, cyclic_scan, uniform_random
from repro.trace.record import AccessKind, TraceChunk
from repro.units import MB


def send(emulator, message):
    for address in MessageCodec.encode(message):
        emulator.snoop(FSBTransaction(address=address, kind=AccessKind.WRITE))


def session(emulator, chunk, instructions):
    send(emulator, Message(MessageKind.START_EMULATION))
    send(emulator, Message(MessageKind.CORE_ID, 0))
    emulator.snoop_chunk(chunk)
    send(emulator, Message(MessageKind.INSTRUCTIONS_RETIRED, instructions))
    send(emulator, Message(MessageKind.STOP_EMULATION))


class TestSessions:
    def test_start_resets_progress_counters(self):
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        chunk = cyclic_scan(Region(0, 64 * 1024), passes=1, stride=64)
        session(emulator, chunk, 5000)
        assert emulator.af.instructions_retired == 5000
        session(emulator, chunk, 3000)
        # Second session's counter is its own, not cumulative.
        assert emulator.af.instructions_retired == 3000

    def test_cache_state_survives_sessions(self):
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        chunk = cyclic_scan(Region(0, 64 * 1024), passes=1, stride=64)
        session(emulator, chunk, 1000)
        misses_first = emulator.stats.misses
        session(emulator, chunk, 1000)
        # Same lines again: all warm.
        assert emulator.stats.misses == misses_first

    def test_reset_statistics_keeps_contents(self):
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        chunk = cyclic_scan(Region(0, 64 * 1024), passes=1, stride=64)
        session(emulator, chunk, 1000)
        emulator.reset_statistics()
        assert emulator.stats.accesses == 0
        session(emulator, chunk, 1000)
        assert emulator.stats.misses == 0  # still warm: pure hits

    def test_reconfigure_flushes_everything(self):
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        chunk = cyclic_scan(Region(0, 64 * 1024), passes=1, stride=64)
        session(emulator, chunk, 1000)
        emulator.reconfigure(DragonheadConfig(cache_size=2 * MB))
        assert emulator.stats.accesses == 0
        assert emulator.config.cache_size == 2 * MB
        session(emulator, chunk, 1000)
        assert emulator.stats.misses == 1024  # cold again

    def test_scalar_and_chunk_snoop_agree(self):
        chunk = uniform_random(
            Region(0, 4 * MB), count=5000, rng=np.random.default_rng(71)
        )
        scalar = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        send(scalar, Message(MessageKind.START_EMULATION))
        for access in chunk:
            scalar.snoop(FSBTransaction(address=access.address, kind=access.kind))
        chunked = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        send(chunked, Message(MessageKind.START_EMULATION))
        chunked.snoop_chunk(chunk)
        assert scalar.stats.misses == chunked.stats.misses
        assert scalar.stats.hits == chunked.stats.hits


class TestConfigurationEnvelope:
    @pytest.mark.parametrize("size_mb", [1, 2, 4, 8, 16, 32, 64, 128, 256])
    def test_every_paper_size_configures(self, size_mb):
        DragonheadEmulator(DragonheadConfig(cache_size=size_mb * MB))

    @pytest.mark.parametrize("line", [64, 128, 256, 512, 1024, 2048, 4096])
    def test_every_paper_line_size_configures(self, line):
        emulator = DragonheadEmulator(
            DragonheadConfig(cache_size=32 * MB, line_size=line)
        )
        total = sum(bank.config.size for bank in emulator.banks)
        assert total == 32 * MB

    def test_extreme_corner_geometry(self):
        """256MB with 4KB lines: the envelope's hardest bank geometry."""
        emulator = DragonheadEmulator(
            DragonheadConfig(cache_size=256 * MB, line_size=4096)
        )
        send(emulator, Message(MessageKind.START_EMULATION))
        emulator.snoop_chunk(TraceChunk([i * 4096 for i in range(100)]))
        assert emulator.stats.misses == 100

    def test_bank_load_balance(self):
        """Sequential lines spread evenly over the four CC banks."""
        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB))
        send(emulator, Message(MessageKind.START_EMULATION))
        emulator.snoop_chunk(TraceChunk([i * 64 for i in range(4000)]))
        loads = [bank.stats.accesses for bank in emulator.banks]
        assert loads == [1000, 1000, 1000, 1000]
