"""Unit tests for the sweep fabric's coordination layer.

The ledger is the whole ballgame: if claims are exclusive, leases
expire honestly, results are recorded exactly once, and torn writes
can never fuse records, then the chaos results (``test_fabric_chaos``)
follow.  These tests pin each of those properties in isolation, plus
the config/template validation the CLIs rely on.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ConfigurationError, FabricError
from repro.harness.executors.base import (
    DEFAULT_WORKER_COMMAND,
    FabricConfig,
    spawn_command,
)
from repro.harness.executors.ledger import (
    LEDGER_FORMAT,
    FabricLedger,
    ensure_no_conflicts,
)
from repro.harness.executors.worker import work_loop
from repro.harness.supervisor import SweepJournal


# -- module-level tasks (ledger payloads pickle by reference) -----------


def double(item):
    return item * 2


def one_failure_then_value(item):
    """Raises on the first attempt (per-process marker), then succeeds."""
    value, marker_dir = item
    marker = marker_dir + f"/failed-{value}"
    import os

    if not os.path.exists(marker):
        open(marker, "w").close()
        raise ValueError("transient")
    return value + 100


class TestFabricConfig:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="backend"):
            FabricConfig(backend="carrier-pigeon")

    def test_rejects_pool_as_fabric_backend(self):
        # ``pool`` is an executor, but not a *ledger* backend.
        with pytest.raises(ConfigurationError):
            FabricConfig(backend="pool")

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError, match="shards"):
            FabricConfig(shards=0)
        with pytest.raises(ConfigurationError, match="lease-ttl"):
            FabricConfig(lease_ttl=0.0)
        with pytest.raises(ConfigurationError, match="quarantine"):
            FabricConfig(quarantine_after=0)

    def test_heartbeat_defaults_to_a_third_of_the_ttl(self):
        assert FabricConfig(lease_ttl=30.0).heartbeat_period == 10.0
        assert FabricConfig(lease_ttl=30.0, heartbeat_every=2.0).heartbeat_period == 2.0


class TestSpawnCommand:
    def test_expands_all_placeholders(self):
        argv = spawn_command(
            DEFAULT_WORKER_COMMAND, "/tmp/ledger.jsonl", "remote-1", "python3"
        )
        assert argv[0] == "python3"
        assert "/tmp/ledger.jsonl" in argv
        assert "remote-1" in argv

    def test_unknown_placeholder_is_a_config_error(self):
        with pytest.raises(ConfigurationError, match="placeholder"):
            spawn_command("{python} --host {hostname}", "l", "w", "p")

    def test_empty_template_is_a_config_error(self):
        with pytest.raises(ConfigurationError, match="nothing"):
            spawn_command("   ", "l", "w", "p")


class TestLedgerFile:
    def test_fresh_ledger_writes_versioned_header(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        FabricLedger(path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"format": LEDGER_FORMAT}

    def test_refuses_foreign_schema(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"format": 99}\n')
        with pytest.raises(ConfigurationError, match="schema"):
            FabricLedger(path, resume=True)

    def test_resume_without_file_creates_one(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        FabricLedger(path, resume=True)
        assert path.exists()

    def test_manifest_is_append_once_per_key(self, tmp_path):
        ledger = FabricLedger(tmp_path / "ledger.jsonl")
        points = [("k1", (double, 1), None), ("k2", (double, 2), None)]
        assert ledger.manifest(points) == 2
        # Re-manifesting (a resumed parent) appends nothing new.
        assert ledger.manifest(points) == 0
        assert ledger.manifest(points + [("k3", (double, 3), None)]) == 1

    def test_torn_tail_is_repaired_not_fused(self, tmp_path):
        """A record appended after a torn write must not fuse with it."""
        path = tmp_path / "ledger.jsonl"
        ledger = FabricLedger(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "done", "key": "torn", "result": "AB')
        ledger.append({"type": "failed", "key": "k", "worker": "w",
                       "attempts": 1, "error": "E", "retry_after": 0.0})
        lines = path.read_bytes().splitlines()
        # The torn fragment became its own (invalid) line; the appended
        # record parses cleanly and the fragment's key never surfaces.
        reader = FabricLedger(path, resume=True, create=False)
        reader.scan()
        assert "torn" not in reader.state.points
        assert "k" in reader.state.points
        assert reader.state.skipped_lines == 1
        assert json.loads(lines[-1])["type"] == "failed"

    def test_scan_ignores_incomplete_final_line(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = FabricLedger(path)
        ledger.append({"type": "failed", "key": "a", "worker": "w",
                       "attempts": 1, "error": "E", "retry_after": 0.0})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "failed", "key": "b"')  # no newline yet
        reader = FabricLedger(path, resume=True, create=False)
        reader.scan()
        assert "a" in reader.state.points
        assert "b" not in reader.state.points


class TestLeases:
    def _manifested(self, tmp_path, keys=("k1", "k2")):
        ledger = FabricLedger(tmp_path / "ledger.jsonl")
        ledger.manifest([(k, (double, i), None) for i, k in enumerate(keys)])
        return ledger

    def test_claims_follow_manifest_order(self, tmp_path):
        ledger = self._manifested(tmp_path)
        claim = ledger.try_claim("w1", 30.0, retries=2, quarantine_after=3)
        assert claim.key == "k1" and claim.attempt == 1 and not claim.steal

    def test_valid_lease_is_exclusive(self, tmp_path):
        ledger = self._manifested(tmp_path, keys=("k1",))
        assert ledger.try_claim("w1", 30.0, 2, 3).key == "k1"
        assert ledger.try_claim("w2", 30.0, 2, 3) is None

    def test_expired_lease_is_stolen(self, tmp_path):
        ledger = self._manifested(tmp_path, keys=("k1",))
        ledger.try_claim("w1", 30.0, 2, 3, now=1000.0)
        stolen = ledger.try_claim("w2", 30.0, 2, 3, now=1031.0)
        assert stolen.key == "k1" and stolen.steal
        assert ledger.state.points["k1"].expired_holders == {"w1"}

    def test_heartbeat_extends_the_lease(self, tmp_path):
        ledger = self._manifested(tmp_path, keys=("k1",))
        ledger.try_claim("w1", 0.5, 2, 3, now=1000.0)
        ledger.heartbeat("k1", "w1", 3600.0)
        ledger.scan()
        assert ledger.try_claim("w2", 30.0, 2, 3, now=1001.0) is None

    def test_quarantine_after_k_distinct_dead_holders(self, tmp_path):
        ledger = self._manifested(tmp_path, keys=("k1",))
        ledger.try_claim("w1", 1.0, 2, quarantine_after=2, now=1000.0)
        ledger.try_claim("w2", 1.0, 2, quarantine_after=2, now=1002.0)
        # Third arrival: two distinct workers died holding k1 — poison.
        claim = ledger.try_claim("w3", 1.0, 2, quarantine_after=2, now=1004.0)
        assert claim is None
        ps = ledger.state.points["k1"]
        assert ps.quarantined is not None
        assert sorted(ps.quarantined["dead_workers"]) == ["w1", "w2"]
        # Quarantine is terminal: nobody ever claims it again.
        assert ledger.try_claim("w4", 1.0, 2, 2, now=1010.0) is None

    def test_same_worker_dying_twice_is_one_dead_holder(self, tmp_path):
        ledger = self._manifested(tmp_path, keys=("k1",))
        ledger.try_claim("w1", 1.0, 2, quarantine_after=2, now=1000.0)
        claim = ledger.try_claim("w1", 1.0, 2, quarantine_after=2, now=1002.0)
        # One flaky worker re-stealing its own expired lease is not
        # poison evidence — the body count is *distinct* workers.
        assert claim is not None and claim.steal

    def test_failed_attempts_gate_on_backoff_and_retries(self, tmp_path):
        ledger = self._manifested(tmp_path, keys=("k1",))
        claim = ledger.try_claim("w1", 30.0, 2, 3, now=1000.0)
        ledger.record_failed("k1", "w1", claim.attempt, ValueError("x"),
                             retry_after=1005.0)
        assert ledger.try_claim("w1", 30.0, 2, 3, now=1001.0) is None  # backoff
        retry = ledger.try_claim("w1", 30.0, 2, 3, now=1006.0)
        assert retry.attempt == 2
        ledger.record_failed("k1", "w1", 2, ValueError("x"), retry_after=0.0)
        ledger.record_failed("k1", "w1", 3, ValueError("x"), retry_after=0.0)
        # attempts (3) > retries (2): terminal, never claimed again.
        assert ledger.try_claim("w1", 30.0, 2, 3, now=2000.0) is None
        assert ledger.state.all_terminal(retries=2)


class TestRecordDone:
    def test_first_recording_wins(self, tmp_path):
        ledger = FabricLedger(tmp_path / "ledger.jsonl")
        assert ledger.record_done("k1", "w1", 42, 0.1, 1) == "done"
        assert ledger.state.points["k1"].result() == 42

    def test_byte_identical_reexecution_verifies(self, tmp_path):
        ledger = FabricLedger(tmp_path / "ledger.jsonl")
        ledger.record_done("k1", "w1", {"mpki": 3.5}, 0.1, 1)
        assert ledger.record_done("k1", "w2", {"mpki": 3.5}, 0.2, 1) == "verified"
        assert ledger.state.points["k1"].verified == 1
        ensure_no_conflicts(ledger.state)  # no complaint

    def test_divergent_reexecution_conflicts(self, tmp_path):
        ledger = FabricLedger(tmp_path / "ledger.jsonl")
        ledger.record_done("k1", "w1", 42, 0.1, 1)
        assert ledger.record_done("k1", "w2", 43, 0.2, 1) == "conflict"
        with pytest.raises(FabricError, match="pure function"):
            ensure_no_conflicts(ledger.state)

    def test_done_releases_the_lease(self, tmp_path):
        ledger = FabricLedger(tmp_path / "ledger.jsonl")
        ledger.manifest([("k1", (double, 7), None)])
        ledger.try_claim("w1", 30.0, 2, 3)
        ledger.record_done("k1", "w1", 14, 0.1, 1)
        assert ledger.state.points["k1"].lease_worker is None


class TestJournalInterop:
    def test_fabric_resumes_from_a_pool_journal(self, tmp_path):
        """A plain v3 journal entry reads as a fabric ``done`` record."""
        path = tmp_path / "journal.jsonl"
        key = SweepJournal.point_key(double, 21)
        with SweepJournal(path) as journal:
            journal.record(key, 42, wall_time_s=0.5, attempts=1)
        ledger = FabricLedger(path, resume=True)
        ledger.scan()
        assert ledger.state.points[key].result() == 42

    def test_pool_resumes_from_a_fabric_ledger(self, tmp_path):
        """``--resume`` on a fabric ledger skips fabric-completed work."""
        path = tmp_path / "ledger.jsonl"
        ledger = FabricLedger(path)
        key = SweepJournal.point_key(double, 21)
        ledger.manifest([(key, (double, 21), None)])
        ledger.try_claim("w1", 30.0, 2, 3)
        ledger.record_done(key, "w1", 42, 0.1, 1)
        journal = SweepJournal(path, resume=True)
        assert key in journal and journal.get(key) == 42
        journal.close()


class TestWorkLoop:
    def _prepare(self, tmp_path, items, task=double, config=None):
        path = tmp_path / "ledger.jsonl"
        ledger = FabricLedger(path)
        row = {"lease_ttl": 30.0, "heartbeat_every": 0.05,
               "poll_interval": 0.01, "retries": 2,
               "backoff_base": 0.01, "backoff_cap": 0.05,
               "quarantine_after": 3}
        row.update(config or {})
        ledger.write_config(row)
        keys = [SweepJournal.point_key(task, item) for item in items]
        ledger.manifest([(k, (task, i), None) for k, i in zip(keys, items)])
        return path, ledger, keys

    def test_drains_the_manifest_and_exits_zero(self, tmp_path):
        path, ledger, keys = self._prepare(tmp_path, [1, 2, 3])
        assert work_loop(str(path), "w1", poll_interval=0.01) == 0
        ledger.scan()
        assert [ledger.state.points[k].result() for k in keys] == [2, 4, 6]

    def test_failed_attempts_are_recorded_and_retried(self, tmp_path):
        items = [(5, str(tmp_path))]
        path, ledger, keys = self._prepare(
            tmp_path, items, task=one_failure_then_value
        )
        assert work_loop(str(path), "w1", poll_interval=0.01) == 0
        ledger.scan()
        ps = ledger.state.points[keys[0]]
        assert ps.result() == 105
        assert ps.attempts() == 1  # one recorded failure before success
        assert ps.done["attempts"] == 2

    def test_stop_event_ends_the_loop_cleanly(self, tmp_path):
        path, _, _ = self._prepare(tmp_path, [])
        stop = threading.Event()
        stop.set()
        assert work_loop(str(path), "w1", poll_interval=0.01, stop=stop) == 0
