"""Chaos and integration tests for the ledger-backed sweep fabric.

The contract: a fabric sweep returns exactly what a serial supervised
run returns — byte-for-byte — no matter how many workers are
SIGKILLed mid-point, and the ledger accounts for every point exactly
once.  Poison points (points that kill every worker that executes
them) are quarantined instead of eating the respawn budget.

These tests drive real multi-process sweeps: forked shard workers,
subprocess remote workers, and the ``scripts/chaos_sweep.py`` harness
that CI's ``fabric-chaos-smoke`` job runs.
"""

from __future__ import annotations

import math
import os
import pickle
import signal
import sys
from pathlib import Path

import pytest

from repro.errors import SweepPointError
from repro.harness.executors import tasks
from repro.harness.executors.base import FabricConfig
from repro.harness.supervisor import (
    SupervisorContext,
    SupervisorPolicy,
    supervise,
    supervised_map,
)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
import chaos_sweep  # noqa: E402  (the harness under test)


# -- module-level tasks (fabric payloads pickle by reference) -----------


def always_raises(item):
    raise ValueError(f"bad point {item}")


#: A small real grid: 16 (workload, cores, cache, line) points.
GRID = chaos_sweep.build_grid(16)


def identical(a, b) -> bool:
    """Byte-identity, the fabric's actual claim (== would accept 1 vs 1.0)."""
    return pickle.dumps(a, protocol=4) == pickle.dumps(b, protocol=4)


class TestFabricIdentity:
    def test_shard_fabric_matches_serial(self, tmp_path):
        serial = supervised_map(
            tasks.model_mpki_point, GRID, context=SupervisorContext()
        )
        fabric = FabricConfig(
            backend="shard",
            shards=3,
            lease_ttl=10.0,
            ledger_path=str(tmp_path / "ledger.jsonl"),
        )
        with supervise(SupervisorPolicy(), fabric=fabric) as context:
            out = supervised_map(tasks.model_mpki_point, GRID)
        assert identical(out, serial)
        assert context.counts["fabric-lease"] == len(GRID)
        assert "fabric-steal" not in context.counts

    def test_remote_fabric_matches_serial(self, tmp_path):
        grid = GRID[:4]
        serial = supervised_map(
            tasks.model_mpki_point, grid, context=SupervisorContext()
        )
        fabric = FabricConfig(
            backend="remote",
            shards=2,
            lease_ttl=10.0,
            ledger_path=str(tmp_path / "ledger.jsonl"),
        )
        with supervise(SupervisorPolicy(), fabric=fabric) as context:
            out = supervised_map(tasks.model_mpki_point, grid)
        assert identical(out, serial)
        assert context.counts["fabric-lease"] == len(grid)

    def test_fabric_resume_skips_completed_points(self, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        fabric = FabricConfig(backend="shard", shards=2, ledger_path=ledger)
        with supervise(SupervisorPolicy(), fabric=fabric):
            first = supervised_map(tasks.model_mpki_point, GRID)
        resumed = FabricConfig(
            backend="shard", shards=2, ledger_path=ledger, resume=True
        )
        with supervise(SupervisorPolicy(), fabric=resumed) as context:
            second = supervised_map(tasks.model_mpki_point, GRID)
        assert identical(first, second)
        assert context.counts["journal-skip"] == len(GRID)
        assert "fabric-lease" not in context.counts  # nothing re-ran


class TestChaos:
    def test_sigkilled_workers_do_not_change_results(self, tmp_path):
        """The tentpole claim: >= 3 SIGKILLs, byte-identical results,
        exactly one done record per point in the ledger."""
        serial = supervised_map(
            tasks.slow_mpki_point, GRID, context=SupervisorContext()
        )
        ledger_path = tmp_path / "ledger.jsonl"
        monkey = chaos_sweep.ChaosMonkey(seed=42, kills=3)
        fabric = FabricConfig(
            backend="shard",
            shards=2,
            lease_ttl=1.0,
            ledger_path=str(ledger_path),
            observer=monkey,
            max_respawns=16,
        )
        with supervise(SupervisorPolicy(), fabric=fabric) as context:
            out = supervised_map(tasks.slow_mpki_point, GRID)
        assert len(monkey.delivered) >= 3, (
            "the sweep drained before the monkey's quota — the run "
            f"proved nothing (delivered: {monkey.delivered})"
        )
        assert identical(out, serial)
        keys = [
            chaos_sweep.SweepJournal.point_key(tasks.slow_mpki_point, item)
            for item in GRID
        ]
        assert chaos_sweep.audit_ledger(ledger_path, keys) == []
        assert context.counts["fabric-worker-respawn"] >= 3

    def test_kill_during_drain_is_harmless(self, tmp_path):
        """A worker killed while the last points finish must not wedge
        the driver (the respawn path runs even with one point left)."""
        grid = GRID[:4]
        killed = []

        def late_killer(backend, cycle):
            if cycle == 2 and not killed:
                pids = backend.worker_pids()
                if pids:
                    victim = sorted(pids)[0]
                    os.kill(pids[victim], signal.SIGKILL)
                    killed.append(victim)

        serial = supervised_map(
            tasks.slow_mpki_point, grid, context=SupervisorContext()
        )
        fabric = FabricConfig(
            backend="shard",
            shards=2,
            lease_ttl=1.0,
            ledger_path=str(tmp_path / "ledger.jsonl"),
            observer=late_killer,
        )
        with supervise(SupervisorPolicy(), fabric=fabric):
            out = supervised_map(tasks.slow_mpki_point, grid)
        assert identical(out, serial)
        assert killed  # the kill really happened


class TestQuarantine:
    def test_poison_point_is_quarantined_and_degrades(self, tmp_path):
        fabric = FabricConfig(
            backend="shard",
            shards=2,
            lease_ttl=0.5,
            quarantine_after=2,
            ledger_path=str(tmp_path / "ledger.jsonl"),
        )
        policy = SupervisorPolicy(failure_value=float("nan"))
        with supervise(policy, fabric=fabric) as context:
            out = supervised_map(tasks.poison_point, [("poison", 0, 0, 0)])
        assert len(out) == 1 and math.isnan(out[0])
        assert context.counts["fabric-quarantined"] == 1
        assert context.counts["point-degraded"] == 1

    def test_poison_point_raises_without_degradation(self, tmp_path):
        fabric = FabricConfig(
            backend="shard",
            shards=2,
            lease_ttl=0.5,
            quarantine_after=2,
            ledger_path=str(tmp_path / "ledger.jsonl"),
        )
        with pytest.raises(SweepPointError, match="quarantined"):
            with supervise(SupervisorPolicy(), fabric=fabric):
                supervised_map(tasks.poison_point, [("poison", 0, 0, 0)])


class TestFailurePaths:
    def test_exhausted_point_raises_sweep_point_error(self, tmp_path):
        fabric = FabricConfig(
            backend="shard",
            shards=2,
            lease_ttl=10.0,
            ledger_path=str(tmp_path / "ledger.jsonl"),
        )
        policy = SupervisorPolicy(retries=1, backoff_base=0.01)
        with pytest.raises(SweepPointError, match="bad point"):
            with supervise(policy, fabric=fabric):
                supervised_map(always_raises, [1])

    def test_exhausted_point_degrades_when_lenient(self, tmp_path):
        fabric = FabricConfig(
            backend="shard",
            shards=2,
            lease_ttl=10.0,
            ledger_path=str(tmp_path / "ledger.jsonl"),
        )
        policy = SupervisorPolicy(
            retries=1, backoff_base=0.01, failure_value=None
        )
        with supervise(policy, fabric=fabric) as context:
            out = supervised_map(always_raises, [1, 2])
        assert out == [None, None]
        assert context.counts["point-degraded"] == 2
        assert context.counts["point-retry"] == 2  # one retry each


class TestChaosScript:
    """The CI smoke job's entry points, exercised in-process."""

    def test_chaos_run_exits_zero(self, capsys):
        code = chaos_sweep.main(
            ["--points", "8", "--kills", "2", "--seed", "3", "--lease-ttl", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "byte-identical to the serial baseline" in out

    def test_quarantine_smoke_exits_zero(self, capsys):
        code = chaos_sweep.main(["--quarantine-smoke"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "quarantined" in out
