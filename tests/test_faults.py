"""Tests for the fault-injection framework.

Covers the FAULTSPEC parser, the determinism contract (same seed →
identical faults and identical statistics, regardless of worker count),
the injector's per-channel behavior, the lenient AF resynchronization
paths against their strict counterparts, missed-window interpolation,
and trace-cache corruption → quarantine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.emulator import AddressFilter, DragonheadConfig, DragonheadEmulator
from repro.cache.sampling import WindowSampler
from repro.cache.stats import CacheStats
from repro.errors import FaultInjectionError, RecoverableProtocolError
from repro.faults import FaultInjector, FaultSpec, inject_trace_corruption
from repro.faults.report import (
    INJECTED,
    RECOVERED,
    DegradationRecord,
    merge_records,
    records_from_counts,
)
from repro.faults.spec import parse_fault_spec
from repro.harness.replay import capture_replay_log, log_cache_key, replay, replay_map
from repro.protocol import MESSAGE_BASE, Message, MessageCodec, MessageKind
from repro.trace.cache import TraceCache
from repro.trace.generators import Region, cyclic_scan
from repro.units import MB
from repro.workloads.registry import get_workload


def send(port, message):
    for address in MessageCodec.encode(message):
        from repro.core.fsb import FSBTransaction
        from repro.trace.record import AccessKind

        port.snoop(FSBTransaction(address=address, kind=AccessKind.WRITE))


class TestFaultSpec:
    def test_parse_full_spec(self):
        spec = FaultSpec.parse(
            "seed=42,drop-data=0.001,dup-data=0.002,drop-msg=0.01,"
            "reorder-msg=0.03,miss-window=0.05,corrupt-trace=2,"
            "crash=0.1,hang=0.2,hang-seconds=1.5"
        )
        assert spec.seed == 42
        assert spec.drop_data == 0.001
        assert spec.dup_data == 0.002
        assert spec.drop_message == 0.01
        assert spec.reorder_message == 0.03
        assert spec.miss_window == 0.05
        assert spec.corrupt_trace == 2
        assert spec.crash == 0.1
        assert spec.hang == 0.2
        assert spec.hang_seconds == 1.5

    def test_parse_empty_disables(self):
        assert parse_fault_spec(None) is None
        assert parse_fault_spec("   ") is None

    def test_unknown_channel_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault channel"):
            FaultSpec.parse("seed=1,drop-everything=0.5")

    def test_bad_value_rejected(self):
        with pytest.raises(FaultInjectionError, match="needs a float"):
            FaultSpec.parse("drop-data=lots")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(FaultInjectionError, match=r"in \[0, 1\]"):
            FaultSpec.parse("drop-msg=1.5")

    def test_negative_corrupt_count_rejected(self):
        with pytest.raises(FaultInjectionError, match="non-negative"):
            FaultSpec.parse("corrupt-trace=-1")

    def test_describe_round_trips_non_defaults(self):
        spec = FaultSpec.parse("seed=7,drop-data=0.25,crash=0.5")
        assert FaultSpec.parse(spec.describe()) == spec

    def test_touches_bus(self):
        assert FaultSpec(miss_window=0.1).touches_bus
        assert not FaultSpec(crash=0.5, corrupt_trace=3).touches_bus

    def test_rng_deterministic_per_scope(self):
        spec = FaultSpec(seed=3)
        a = spec.rng("point-a").random(8)
        b = spec.rng("point-a").random(8)
        c = spec.rng("point-b").random(8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_harness_fault_deterministic(self):
        spec = FaultSpec(seed=11, crash=0.3, hang=0.3)
        fates = [spec.harness_fault(f"k{i}") for i in range(64)]
        assert fates == [spec.harness_fault(f"k{i}") for i in range(64)]
        assert "crash" in fates and "hang" in fates and None in fates


class TestDegradationRecords:
    def test_records_from_counts_drops_zeros_and_sorts(self):
        records = records_from_counts({"b": 2, "a": 1, "z": 0}, INJECTED)
        assert [r.source for r in records] == [INJECTED, INJECTED]
        assert [(r.kind, r.count) for r in records] == [("a", 1), ("b", 2)]

    def test_merge_sums_matching_records(self):
        one = records_from_counts({"drop": 2}, INJECTED)
        two = records_from_counts({"drop": 3}, INJECTED)
        other = records_from_counts({"drop": 1}, RECOVERED)
        merged = merge_records(one, two, other)
        by_source = {r.source: r.count for r in merged}
        assert by_source == {INJECTED: 5, RECOVERED: 1}


class TestLenientResync:
    """Each AF anomaly: strict raises, lenient recovers and counts."""

    def _filter(self, strict):
        af = AddressFilter(strict=strict)
        af.handle_message(MessageCodec.encode(Message(MessageKind.START_EMULATION))[0])
        return af

    def test_spurious_start_keeps_window_open(self):
        af = self._filter(strict=False)
        af.instructions_retired = 500
        af.handle_message(MessageCodec.encode(Message(MessageKind.START_EMULATION))[0])
        assert af.emulating
        assert af.instructions_retired == 500  # no session reset
        assert af.anomalies == {"spurious-start": 1}
        with pytest.raises(RecoverableProtocolError):
            self._filter(strict=True).handle_message(
                MessageCodec.encode(Message(MessageKind.START_EMULATION))[0]
            )

    def test_orphan_stop_dropped(self):
        stop = MessageCodec.encode(Message(MessageKind.STOP_EMULATION))[0]
        af = AddressFilter(strict=False)
        af.handle_message(stop)
        assert not af.emulating
        assert af.anomalies == {"orphan-stop": 1}
        with pytest.raises(RecoverableProtocolError):
            AddressFilter(strict=True).handle_message(stop)

    def test_counter_regression_keeps_high_water(self):
        af = self._filter(strict=False)
        af.handle_message(
            MessageCodec.encode(Message(MessageKind.INSTRUCTIONS_RETIRED, 1000))[0]
        )
        af.handle_message(
            MessageCodec.encode(Message(MessageKind.INSTRUCTIONS_RETIRED, 400))[0]
        )
        assert af.instructions_retired == 1000
        assert af.anomalies == {"counter-regression": 1}
        strict = self._filter(strict=True)
        strict.handle_message(
            MessageCodec.encode(Message(MessageKind.INSTRUCTIONS_RETIRED, 1000))[0]
        )
        with pytest.raises(RecoverableProtocolError):
            strict.handle_message(
                MessageCodec.encode(Message(MessageKind.INSTRUCTIONS_RETIRED, 400))[0]
            )

    def test_undecodable_message_discarded(self):
        bogus = MESSAGE_BASE | (0x7F << 40)  # opcode outside MessageKind
        af = AddressFilter(strict=False)
        assert af.handle_message(bogus) is None
        assert af.anomalies == {"decode-error": 1}
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            AddressFilter(strict=True).handle_message(bogus)


class TestWindowInterpolation:
    def test_multi_boundary_delta_is_spread(self):
        plain = WindowSampler(frequency_hz=1e6, interval_us=1.0)  # 1 cycle/window
        lenient = WindowSampler(frequency_hz=1e6, interval_us=1.0, interpolate=True)
        stats = CacheStats()
        stats.accesses = 90
        stats.misses = 9
        for sampler in (plain, lenient):
            sampler.advance(3, 300, stats)  # one report crossing 3 windows
        # Default: one fat window then empties; lenient: an even split.
        assert [s.instructions for s in plain.samples] == [300, 0, 0]
        assert [s.instructions for s in lenient.samples] == [100, 100, 100]
        assert [s.misses for s in lenient.samples] == [3, 3, 3]
        assert lenient.interpolated_windows == 2
        # Totals conserved either way.
        assert sum(s.instructions for s in lenient.samples) == 300
        assert sum(s.accesses for s in lenient.samples) == 90

    def test_remainder_goes_to_earliest_windows(self):
        sampler = WindowSampler(frequency_hz=1e6, interval_us=1.0, interpolate=True)
        stats = CacheStats()
        stats.accesses = 7
        sampler.advance(3, 7, stats)
        assert [s.accesses for s in sampler.samples] == [3, 2, 2]


class TestInjector:
    def _emulator(self):
        return DragonheadEmulator(DragonheadConfig(cache_size=1 * MB), strict=False)

    def test_dropped_data_never_reaches_the_banks(self):
        emulator = self._emulator()
        injector = FaultInjector(emulator, FaultSpec(seed=1, drop_data=1.0))
        send(injector, Message(MessageKind.START_EMULATION))
        injector.snoop_chunk(cyclic_scan(Region(0, 64 * 1024), passes=1, stride=64))
        assert emulator.stats.accesses == 0
        assert injector.counts["data-drop"] == 1024

    def test_duplicated_data_doubles_accesses(self):
        baseline = self._emulator()
        send(baseline, Message(MessageKind.START_EMULATION))
        chunk = cyclic_scan(Region(0, 64 * 1024), passes=1, stride=64)
        baseline.snoop_chunk(chunk)

        emulator = self._emulator()
        injector = FaultInjector(emulator, FaultSpec(seed=1, dup_data=1.0))
        send(injector, Message(MessageKind.START_EMULATION))
        injector.snoop_chunk(chunk)
        assert emulator.stats.accesses == 2 * baseline.stats.accesses
        assert injector.counts["data-dup"] == len(chunk)

    def test_dropped_stop_recovers_leniently(self):
        emulator = self._emulator()
        injector = FaultInjector(emulator, FaultSpec(seed=1, drop_message=1.0))
        send(injector, Message(MessageKind.STOP_EMULATION))
        assert injector.counts == {"msg-drop": 1}
        assert emulator.af.anomalies == {}  # never even saw it

    def test_injected_records_report_as_injected(self):
        injector = FaultInjector(self._emulator(), FaultSpec(seed=1, drop_data=1.0))
        send(injector, Message(MessageKind.START_EMULATION))
        injector.snoop_chunk(cyclic_scan(Region(0, 4096), passes=1, stride=64))
        (record,) = injector.records
        assert record == DegradationRecord("data-drop", INJECTED, 64)


class TestSeededReplayDeterminism:
    SPEC = FaultSpec.parse(
        "seed=42,drop-data=0.002,dup-data=0.001,drop-msg=0.05,"
        "reorder-msg=0.05,miss-window=0.2"
    )

    def test_same_seed_same_stats_and_records(self):
        workload = get_workload("FIMI")
        log = capture_replay_log(workload.kernel_guest(), cores=2)
        config = DragonheadConfig(cache_size=1 * MB)
        first = replay(log, config, spec=self.SPEC, lenient=True)
        second = replay(log, config, spec=self.SPEC, lenient=True)
        assert first == second
        assert first.degraded
        assert any(r.source == INJECTED for r in first.degradation)

    def test_worker_count_does_not_change_faults(self):
        workload = get_workload("FIMI")
        log = capture_replay_log(workload.kernel_guest(), cores=2)
        configs = [DragonheadConfig(cache_size=s) for s in (1 * MB, 2 * MB, 4 * MB)]
        serial = replay_map(log, configs, spec=self.SPEC, lenient=True)
        fanned = replay_map(log, configs, jobs=3, spec=self.SPEC, lenient=True)
        assert serial == fanned

    def test_different_seed_different_faults(self):
        workload = get_workload("FIMI")
        log = capture_replay_log(workload.kernel_guest(), cores=2)
        config = DragonheadConfig(cache_size=1 * MB)
        import dataclasses

        other = dataclasses.replace(self.SPEC, seed=43)
        first = replay(log, config, spec=self.SPEC, lenient=True)
        second = replay(log, config, spec=other, lenient=True)
        assert first.degradation != second.degradation

    def test_strict_fault_free_replay_unchanged(self):
        workload = get_workload("FIMI")
        log = capture_replay_log(workload.kernel_guest(), cores=2)
        config = DragonheadConfig(cache_size=1 * MB)
        assert replay(log, config) == replay(log, config, spec=None, lenient=False)
        assert not replay(log, config).degraded


class TestTraceCorruption:
    def test_flip_is_caught_quarantined_and_regenerated(self, tmp_path):
        cache = TraceCache(tmp_path)
        workload = get_workload("FIMI")
        guest = workload.synthetic_guest(accesses_per_thread=2048, scale=1 / 256)
        key = log_cache_key(guest.name, 2, 4096, 8192, {"t": 1})
        log = capture_replay_log(guest, cores=2)
        cache.store(key, *log.to_payload())

        spec = FaultSpec(seed=5, corrupt_trace=1)
        assert inject_trace_corruption(cache, key, spec.rng("corrupt-trace", 0))
        assert cache.load(key) is None  # CRC catches the flip
        assert cache.stats.corrupt == 1
        assert cache.stats.quarantined == 1
        assert "quarantined=1" in cache.stats.describe()
        quarantined = list(tmp_path.glob("*/*.corrupt"))
        assert len(quarantined) == 1
        # The key is free again: a republish then loads cleanly.
        cache.store(key, *log.to_payload())
        assert cache.load(key) is not None

    def test_corrupting_a_missing_entry_is_a_noop(self, tmp_path):
        cache = TraceCache(tmp_path)
        spec = FaultSpec(seed=5)
        assert not inject_trace_corruption(cache, "ab" * 32, spec.rng("x"))
