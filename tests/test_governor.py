"""Tests for the resource governor (repro.governor).

Covers the budget/ambient-state layer, transient-I/O retry, the seeded
filesystem fault shim, quota-aware LRU eviction with pin/mmap safety,
ENOSPC evict-and-retry with the cache-off endgame, crash-debris GC,
deadline drain + resume, the memory clamp on supervised maps, and the
telemetry sinks' write-error accounting.
"""

from __future__ import annotations

import errno
import json
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, DeadlineExpired, FaultInjectionError
from repro.governor import fsshim
from repro.governor import gc as governor_gc
from repro.governor.budget import (
    GovernorState,
    ResourceBudget,
    active_governor,
    govern,
)
from repro.governor.retry import TRANSIENT_ERRNOS, is_transient, retry_io
from repro.harness.supervisor import (
    SupervisorContext,
    SupervisorPolicy,
    SweepJournal,
    supervise,
    supervised_map,
)
from repro.harness.executors import tasks
from repro.telemetry import runtime as telemetry
from repro.telemetry.sinks import MAX_CONSECUTIVE_WRITE_ERRORS, JsonlSink
from repro.trace.cache import PINS_DIR, TraceCache, cache_key, pin_entry


@pytest.fixture(autouse=True)
def _disarm_fsshim():
    """No test leaves the fault shim armed for its neighbours."""
    yield
    fsshim.uninstall()


def make_entry(cache: TraceCache, tag: object, size: int = 4096) -> str:
    """Store one distinct entry; returns its key."""
    key = cache_key({"tag": tag})
    stored = cache.store(
        key, {"tag": str(tag)}, {"payload": np.zeros(size // 8, dtype=np.int64)}
    )
    assert stored is not None
    return key


def age_entry(cache: TraceCache, key: str, seconds_ago: float) -> None:
    """Back-date an entry's last-use stamp (LRU rank is directory mtime)."""
    entry = cache.root / key[:2] / key[2:]
    stamp = time.time() - seconds_ago
    os.utime(entry, (stamp, stamp))


# -- retry_io -----------------------------------------------------------


class TestRetryIO:
    def _flaky(self, failures: int, error: OSError):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise error
            return "done"

        return fn, calls

    def test_transient_error_is_retried_to_success(self):
        fn, calls = self._flaky(2, OSError(errno.EIO, "flaky"))
        sleeps: list[float] = []
        assert retry_io("test.op", fn, sleep=sleeps.append) == "done"
        assert calls["n"] == 3
        assert sleeps == [0.05, 0.1]  # exponential from the base

    def test_exhausted_retries_reraise_the_original_error(self):
        fn, calls = self._flaky(99, OSError(errno.EAGAIN, "still flaky"))
        with pytest.raises(OSError) as exc_info:
            retry_io("test.op", fn, retries=3, sleep=lambda _: None)
        assert exc_info.value.errno == errno.EAGAIN
        assert calls["n"] == 4  # first attempt + 3 retries

    def test_non_transient_error_is_not_retried(self):
        fn, calls = self._flaky(99, OSError(errno.EACCES, "denied"))
        with pytest.raises(OSError):
            retry_io("test.op", fn, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_enospc_is_deliberately_not_transient(self):
        assert errno.ENOSPC not in TRANSIENT_ERRNOS
        assert not is_transient(OSError(errno.ENOSPC, "full"))
        fn, calls = self._flaky(99, OSError(errno.ENOSPC, "full"))
        with pytest.raises(OSError):
            retry_io("test.op", fn, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_backoff_is_capped(self):
        fn, _ = self._flaky(99, OSError(errno.EIO, "flaky"))
        sleeps: list[float] = []
        with pytest.raises(OSError):
            retry_io("test.op", fn, retries=8, backoff_cap=0.2, sleep=sleeps.append)
        assert max(sleeps) == 0.2

    def test_retries_are_counted_per_operation(self):
        with telemetry.session():
            fn, _ = self._flaky(2, OSError(errno.EIO, "flaky"))
            retry_io("test.counted", fn, sleep=lambda _: None)
            assert (
                telemetry.registry().value(
                    "repro_io_retries_total", operation="test.counted"
                )
                == 2
            )


# -- the filesystem fault shim ------------------------------------------


class TestFsShim:
    def _deliveries(self, plan: fsshim.FsFaultPlan, site: str, calls: int):
        fsshim.install(plan)
        outcomes = []
        for _ in range(calls):
            try:
                fsshim.fault_point(site)
                outcomes.append(None)
            except OSError as error:
                outcomes.append(error.errno)
        delivered = fsshim.delivered()
        fsshim.uninstall()
        return outcomes, delivered

    def test_same_seed_same_faults(self):
        plan = fsshim.FsFaultPlan(seed=7, enospc=0.3, eio=0.3)
        first, _ = self._deliveries(plan, "trace-cache.store", 40)
        second, _ = self._deliveries(plan, "trace-cache.store", 40)
        assert first == second
        assert errno.ENOSPC in first and errno.EIO in first

    def test_different_sites_draw_independent_streams(self):
        plan = fsshim.FsFaultPlan(seed=7, enospc=0.5)
        store, _ = self._deliveries(plan, "trace-cache.store", 40)
        journal, _ = self._deliveries(plan, "journal.append", 40)
        assert store != journal

    def test_limit_caps_total_deliveries(self):
        plan = fsshim.FsFaultPlan(seed=1, eio=1.0, limit=3)
        outcomes, delivered = self._deliveries(plan, "journal.append", 10)
        assert len(delivered) == 3
        assert outcomes[3:] == [None] * 7

    def test_sites_filter_restricts_blast_radius(self):
        plan = fsshim.FsFaultPlan(
            seed=1, eio=1.0, sites=frozenset({"ledger.append"})
        )
        outcomes, delivered = self._deliveries(plan, "journal.append", 5)
        assert outcomes == [None] * 5 and delivered == []

    def test_uninstalled_shim_is_silent(self):
        fsshim.uninstall()
        fsshim.fault_point("trace-cache.store")  # must not raise
        assert fsshim.delivered() == []

    def test_parse_round_trip(self):
        plan = fsshim.FsFaultPlan.parse(
            "seed=7, enospc=0.1, eio=0.05, limit=8, sites=journal.append+ledger.append"
        )
        assert plan.seed == 7
        assert plan.enospc == 0.1 and plan.eio == 0.05
        assert plan.limit == 8
        assert plan.sites == frozenset({"journal.append", "ledger.append"})

    @pytest.mark.parametrize(
        "text",
        [
            "enospc=1.5",  # rate out of range
            "seed=banana",  # malformed int
            "rate=0.5",  # unknown field
            "sites=not-a-site",  # unknown site label
            "limit=-1",  # negative limit
        ],
    )
    def test_bad_plans_are_rejected(self, text):
        with pytest.raises(FaultInjectionError):
            fsshim.FsFaultPlan.parse(text)


# -- budgets and the ambient governor -----------------------------------


class TestBudget:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"disk_quota": 0},
            {"disk_quota": -1},
            {"mem_budget": 0},
            {"deadline_s": 0.0},
            {"deadline_s": -5.0},
        ],
    )
    def test_non_positive_budgets_are_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ResourceBudget(**kwargs)

    def test_empty_budget_installs_nothing(self):
        assert not ResourceBudget().any_set
        with govern(ResourceBudget()) as governor:
            assert governor is None
            assert active_governor() is None
        with govern(None) as governor:
            assert governor is None

    def test_govern_installs_and_restores(self):
        assert active_governor() is None
        with govern(ResourceBudget(disk_quota=1024)) as governor:
            assert governor is not None
            assert active_governor() is governor
        assert active_governor() is None

    def test_records_carry_the_governor_source(self):
        from repro.faults.report import GOVERNOR

        state = GovernorState(ResourceBudget(disk_quota=1024))
        state.record("cache-off", detail="nothing evictable")
        (record,) = state.records
        assert record.source == GOVERNOR
        assert record.kind == "cache-off"
        assert state.counts == {"cache-off": 1}
        assert state.describe() == "cache-off=1"

    def test_note_deadline_latches(self):
        state = GovernorState(ResourceBudget(deadline_s=100.0))
        state.note_deadline(3, 10)
        state.note_deadline(5, 10)  # a second observer must not duplicate
        assert len(state.records) == 1
        assert state.counts == {"deadline": 1}

    def test_deadline_clock(self):
        state = GovernorState(ResourceBudget(deadline_s=0.05))
        assert not state.deadline_expired()
        assert state.deadline_remaining() <= 0.05
        time.sleep(0.06)
        assert state.deadline_expired()
        assert state.deadline_remaining() == 0.0
        assert GovernorState(ResourceBudget(disk_quota=1)).deadline_remaining() is None

    def test_memory_pressure_latches_and_records(self):
        readings = iter([100, 10_000, 50])  # maxrss never really drops; latch anyway
        state = GovernorState(
            ResourceBudget(mem_budget=1000), maxrss_fn=lambda: next(readings)
        )
        assert not state.memory_pressure()  # 100 < 1000
        assert state.memory_pressure()  # 10_000 breaches
        assert state.memory_pressure()  # latched: the 50 reading is not consulted
        assert len(state.records) == 1
        assert state.records[0].kind == "mem-pressure"

    def test_no_mem_budget_means_no_pressure(self):
        state = GovernorState(
            ResourceBudget(disk_quota=1), maxrss_fn=lambda: 1 << 60
        )
        assert not state.memory_pressure()


# -- LRU eviction under quota -------------------------------------------


class TestEviction:
    def test_lru_order_oldest_evicted_first(self, tmp_path):
        cache = TraceCache(tmp_path)
        old = make_entry(cache, "old")
        mid = make_entry(cache, "mid")
        new = make_entry(cache, "new")
        age_entry(cache, old, 300)
        age_entry(cache, mid, 200)
        age_entry(cache, new, 100)
        entries = governor_gc.scan_entries(cache)
        quota = max(e.bytes for e in entries) + 1  # room for exactly one
        evicted = governor_gc.enforce_quota(cache, quota)
        assert evicted == 2
        assert cache.stats.evictions == 2
        assert cache.load(new) is not None
        assert cache.load(old) is None and cache.load(mid) is None

    def test_hit_refreshes_recency(self, tmp_path):
        cache = TraceCache(tmp_path)
        old = make_entry(cache, "old")
        new = make_entry(cache, "new")
        age_entry(cache, old, 300)
        age_entry(cache, new, 100)
        assert cache.load(old) is not None  # the touch re-ranks it newest
        entries = governor_gc.scan_entries(cache)
        governor_gc.enforce_quota(cache, max(e.bytes for e in entries) + 1)
        assert cache.load(old) is not None
        assert cache.load(new) is None

    def test_pinned_entry_is_skipped(self, tmp_path):
        cache = TraceCache(tmp_path)
        pinned = make_entry(cache, "pinned")
        other = make_entry(cache, "other")
        age_entry(cache, pinned, 300)  # pinned is the LRU candidate
        age_entry(cache, other, 100)
        with pin_entry(cache.root, pinned):
            governor_gc.enforce_quota(cache, 1)
        assert cache.load(pinned) is not None
        assert cache.load(other) is None

    def test_dead_pid_pins_are_reaped(self, tmp_path):
        cache = TraceCache(tmp_path)
        key = make_entry(cache, "stale")
        pins = cache.root / PINS_DIR
        pins.mkdir(exist_ok=True)
        # A pid from a long-dead reader: spawn-and-reap a child for a
        # pid the kernel has definitely retired from this test's view.
        child = multiprocessing.Process(target=lambda: None)
        child.start()
        child.join()
        (pins / f"{key}.{child.pid}.deadbeef.pin").write_text(str(child.pid))
        governor_gc.enforce_quota(cache, 1)
        assert cache.load(key) is None  # the stale pin did not protect it

    def test_protected_key_is_skipped(self, tmp_path):
        cache = TraceCache(tmp_path)
        keep = make_entry(cache, "keep")
        drop = make_entry(cache, "drop")
        age_entry(cache, keep, 300)
        age_entry(cache, drop, 100)
        governor_gc.enforce_quota(cache, 1, protect={keep})
        assert cache.load(keep) is not None
        assert cache.load(drop) is None

    def test_established_mmap_survives_eviction(self, tmp_path):
        """Rename-then-unlink: a reader holding mappings keeps its data."""
        cache = TraceCache(tmp_path)
        key = cache_key({"tag": "mapped"})
        payload = np.arange(10_000, dtype=np.int64)
        cache.store(key, {"tag": "mapped"}, {"payload": payload})
        _meta, arrays = cache.load(key)
        mapped = arrays["payload"]
        assert isinstance(mapped, np.memmap)
        governor_gc.enforce_quota(cache, 1)
        assert cache.load(key) is None  # evicted for new readers...
        assert np.array_equal(mapped, payload)  # ...but the mapping lives

    def test_eviction_mid_read_is_a_clean_miss(self, tmp_path):
        """A reader losing the race regenerates; it never sees corruption."""
        cache = TraceCache(tmp_path)
        key = make_entry(cache, "raced")
        entries = governor_gc.scan_entries(cache)
        governor_gc.evict_entry(cache, entries[0])
        assert cache.load(key) is None
        assert cache.stats.corrupt == 0 and cache.stats.quarantined == 0

    def test_debris_counts_against_the_quota(self, tmp_path):
        cache = TraceCache(tmp_path)
        key = make_entry(cache, "live")
        wreck = cache.root / ".tmp-deadbeef-1-cafef00d"
        wreck.mkdir()
        (wreck / "half-written.npy").write_bytes(b"x" * 65536)
        governor_gc.enforce_quota(cache, 65536)  # debris alone exceeds it
        assert cache.load(key) is None

    def test_usage_gauges_track_the_scan(self, tmp_path):
        with telemetry.session():
            cache = TraceCache(tmp_path)
            make_entry(cache, "a")
            make_entry(cache, "b")
            entries, total = governor_gc.cache_usage(cache)
            assert len(entries) == 2 and total > 0
            registry = telemetry.registry()
            assert registry.value("repro_trace_cache_entries") == 2
            assert registry.value("repro_trace_cache_bytes") == sum(
                e.bytes for e in entries
            )


def _concurrent_evictor(args: tuple[str, int]) -> None:
    root, quota = args
    cache = TraceCache(root)
    governor_gc.enforce_quota(cache, quota)


class TestConcurrentEviction:
    def test_racing_evictors_never_corrupt_survivors(self, tmp_path):
        """Two processes enforcing one quota: survivors stay loadable.

        The losers' renames fail ENOENT and are skipped; whatever set
        of entries remains, every one of them must still validate —
        no torn manifests, no quarantines.
        """
        cache = TraceCache(tmp_path)
        keys = [make_entry(cache, i, size=8192) for i in range(8)]
        for rank, key in enumerate(keys):
            age_entry(cache, key, 800 - rank * 100)
        entries = governor_gc.scan_entries(cache)
        quota = 3 * max(e.bytes for e in entries) + 1
        with multiprocessing.Pool(2) as pool:
            pool.map(_concurrent_evictor, [(str(tmp_path), quota)] * 2)
        survivor_count = 0
        fresh = TraceCache(tmp_path)
        for key in keys:
            if fresh.load(key) is not None:
                survivor_count += 1
        assert fresh.stats.corrupt == 0 and fresh.stats.quarantined == 0
        assert 1 <= survivor_count <= 3
        _, usage = governor_gc.cache_usage(fresh)
        assert usage <= quota


# -- store under disk pressure ------------------------------------------


class TestStoreUnderPressure:
    def test_enospc_evicts_lru_and_retries(self, tmp_path):
        cache = TraceCache(tmp_path)
        victim = make_entry(cache, "victim")
        age_entry(cache, victim, 300)
        fsshim.install(
            fsshim.FsFaultPlan(
                seed=1, enospc=1.0, limit=1, sites=frozenset({"trace-cache.store"})
            )
        )
        key = cache_key({"tag": "squeezed"})
        stored = cache.store(
            key, {"tag": "squeezed"}, {"payload": np.ones(64, dtype=np.int64)}
        )
        assert stored is not None  # the retry after eviction succeeded
        assert cache.stats.enospc == 1
        assert cache.stats.evictions == 1
        assert cache.load(victim) is None
        assert cache.load(key) is not None
        assert not cache.off

    def test_enospc_with_nothing_evictable_latches_cache_off(self, tmp_path):
        fsshim.install(
            fsshim.FsFaultPlan(
                seed=1, enospc=1.0, sites=frozenset({"trace-cache.store"})
            )
        )
        with govern(ResourceBudget(disk_quota=1 << 20)) as governor:
            cache = TraceCache(tmp_path, disk_quota=1 << 20)
            key = cache_key({"tag": "doomed"})
            stored = cache.store(
                key, {"tag": "doomed"}, {"payload": np.ones(8, dtype=np.int64)}
            )
            assert stored is None
            assert cache.off
            # Later stores short-circuit; loads of existing data still work.
            assert cache.store(key, {"tag": "doomed"}, {}) is None
            assert any(r.kind == "cache-off" for r in governor.records)
        fsshim.uninstall()
        assert cache.load(key) is None  # never landed — a miss, not an error

    def test_transient_eio_is_absorbed_by_retry(self, tmp_path):
        fsshim.install(
            fsshim.FsFaultPlan(
                seed=1, eio=1.0, limit=2, sites=frozenset({"trace-cache.store"})
            )
        )
        cache = TraceCache(tmp_path)
        key = make_entry(cache, "flaky-volume")
        assert len(fsshim.delivered()) == 2
        assert cache.load(key) is not None
        assert not cache.off

    def test_quota_is_enforced_after_each_store(self, tmp_path):
        cache = TraceCache(tmp_path, disk_quota=12 * 1024)
        for i in range(6):
            key = make_entry(cache, i, size=4096)
            age_entry(cache, key, 600 - i * 100)
        _, usage = governor_gc.cache_usage(cache)
        assert usage <= 12 * 1024
        assert cache.stats.evictions >= 1


# -- crash-debris collection --------------------------------------------


class TestCollectGarbage:
    def _wreckage(self, cache: TraceCache, tmp_path):
        key = make_entry(cache, "sound")
        entry = cache.root / key[:2] / key[2:]
        quarantined = entry.with_name(entry.name + ".corrupt")
        entry.rename(quarantined)
        orphan = cache.root / ".tmp-deadbeef-99-cafef00d"
        orphan.mkdir()
        (orphan / "partial.npy").write_bytes(b"x" * 128)
        ckpt_dir = tmp_path / "ckpts"
        ckpt_dir.mkdir()
        stale_ckpt = ckpt_dir / "point.ckpt"
        stale_ckpt.write_bytes(b"snapshot")
        return [quarantined, orphan, stale_ckpt], ckpt_dir

    def test_aged_debris_is_collected_and_counted(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        debris, ckpt_dir = self._wreckage(cache, tmp_path)
        keep = make_entry(cache, "live")
        for path in debris:
            stamp = time.time() - 14 * 24 * 3600
            os.utime(path, (stamp, stamp))
        removed = governor_gc.collect_garbage(cache, checkpoint_dir=ckpt_dir)
        assert removed == {
            "gc_quarantined": 1,
            "gc_orphans": 1,
            "gc_checkpoints": 1,
        }
        assert cache.stats.gc_quarantined == 1
        assert cache.stats.gc_orphans == 1
        assert cache.stats.gc_checkpoints == 1
        for path in debris:
            assert not path.exists()
        assert cache.load(keep) is not None  # live entries are untouchable

    def test_young_debris_is_left_alone(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        debris, ckpt_dir = self._wreckage(cache, tmp_path)
        removed = governor_gc.collect_garbage(cache, checkpoint_dir=ckpt_dir)
        assert removed == {
            "gc_quarantined": 0,
            "gc_orphans": 0,
            "gc_checkpoints": 0,
        }
        for path in debris:
            assert path.exists()

    def test_age_threshold_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(governor_gc.GC_AGE_ENV, "0.0")
        cache = TraceCache(tmp_path / "cache")
        debris, ckpt_dir = self._wreckage(cache, tmp_path)
        removed = governor_gc.collect_garbage(cache, checkpoint_dir=ckpt_dir)
        assert sum(removed.values()) == 3


# -- stats byte-identity ------------------------------------------------


class TestStatsDescribe:
    def test_ungoverned_line_is_byte_identical_to_the_old_format(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.load(make_entry(cache, "x"))
        assert (
            cache.stats.describe()
            == "hits=1 misses=0 stores=1 corrupt=0 quarantined=0"
        )

    def test_governance_counters_appear_only_when_nonzero(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.stats.count("evictions")
        assert cache.stats.describe().endswith("evictions=1")


# -- deadline drain and resume ------------------------------------------


def _napping_task(item: int) -> int:
    time.sleep(0.03)
    return item * item


class TestDeadline:
    def test_serial_deadline_drains_and_resume_finishes(self, tmp_path, capsys):
        grid = list(range(20))
        path = tmp_path / "journal.jsonl"
        with govern(ResourceBudget(deadline_s=0.15)):
            with pytest.raises(DeadlineExpired) as exc_info:
                with SweepJournal(path) as journal:
                    with supervise(SupervisorPolicy(), journal=journal):
                        supervised_map(_napping_task, grid, jobs=1)
        assert 0 < exc_info.value.completed < exc_info.value.total
        assert "deadline expired" in capsys.readouterr().err
        with SweepJournal(path, resume=True) as journal:
            with supervise(SupervisorPolicy(), journal=journal) as context:
                resumed = supervised_map(_napping_task, grid, jobs=1)
        assert context.counts["journal-skip"] == exc_info.value.completed
        assert resumed == [i * i for i in grid]

    def test_pool_deadline_drains_and_resume_finishes(self, tmp_path, capsys):
        grid = [
            ("FIMI", 2, 1 << (20 + i % 3), 64) for i in range(24)
        ]
        task = tasks.slow_mpki_point
        path = tmp_path / "journal.jsonl"
        with govern(ResourceBudget(deadline_s=0.5)):
            with pytest.raises(DeadlineExpired) as exc_info:
                with SweepJournal(path) as journal:
                    with supervise(SupervisorPolicy(), journal=journal):
                        supervised_map(task, grid, jobs=2)
        assert exc_info.value.completed < exc_info.value.total
        assert "deadline expired" in capsys.readouterr().err
        baseline = supervised_map(task, grid, context=SupervisorContext())
        with SweepJournal(path, resume=True) as journal:
            with supervise(SupervisorPolicy(), journal=journal):
                resumed = supervised_map(task, grid, jobs=2)
        assert resumed == baseline

    def test_deadline_is_noted_once_in_the_governor(self):
        grid = list(range(8))
        with govern(ResourceBudget(deadline_s=0.05)) as governor:
            with pytest.raises(DeadlineExpired):
                supervised_map(_napping_task, grid, jobs=1)
            assert governor.counts.get("deadline") == 1
            (record,) = governor.records
            assert record.kind == "deadline"

    def test_no_deadline_means_no_interference(self):
        with govern(ResourceBudget(disk_quota=1 << 30)):
            assert supervised_map(_napping_task, [1, 2, 3], jobs=1) == [1, 4, 9]


# -- the memory clamp ---------------------------------------------------


def _pid_task(item: int) -> int:
    return os.getpid()


class TestMemoryClamp:
    def test_breach_clamps_supervised_maps_to_serial(self):
        budget = ResourceBudget(mem_budget=1024)
        with govern(budget, maxrss_fn=lambda: 1 << 40) as governor:
            pids = supervised_map(_pid_task, list(range(4)), jobs=2)
        assert set(pids) == {os.getpid()}  # no worker processes were forked
        assert governor.counts.get("mem-pressure") == 1

    def test_within_budget_pools_normally(self):
        budget = ResourceBudget(mem_budget=1 << 60)
        with govern(budget, maxrss_fn=lambda: 1024) as governor:
            pids = supervised_map(_pid_task, list(range(4)), jobs=2)
        assert set(pids) != {os.getpid()}
        assert governor.records == []


# -- telemetry sink write-error accounting ------------------------------


class TestSinkWriteErrors:
    def test_jsonl_sink_counts_failures_and_self_disables(self, tmp_path, capsys):
        with telemetry.session():
            sink = JsonlSink(tmp_path / "events.jsonl")
            fsshim.install(
                fsshim.FsFaultPlan(
                    seed=1, eio=1.0, sites=frozenset({"telemetry.emit"})
                )
            )
            for i in range(MAX_CONSECUTIVE_WRITE_ERRORS + 3):
                sink.emit({"event": "tick", "i": i})  # must never raise
            fsshim.uninstall()
            assert sink._disabled
            assert (
                telemetry.registry().value(
                    "repro_telemetry_write_errors_total", sink="jsonl"
                )
                == MAX_CONSECUTIVE_WRITE_ERRORS
            )
            assert "disabled" in capsys.readouterr().err
            sink.close()

    def test_jsonl_sink_recovers_between_transient_failures(self, tmp_path):
        with telemetry.session():
            sink = JsonlSink(tmp_path / "events.jsonl")
            # Fault only the first append attempt; retry absorbs it.
            fsshim.install(
                fsshim.FsFaultPlan(
                    seed=1, eio=1.0, limit=1, sites=frozenset({"telemetry.emit"})
                )
            )
            for i in range(4):
                sink.emit({"event": "tick", "i": i})
            sink.close()
            fsshim.uninstall()
            assert not sink._disabled
            lines = (tmp_path / "events.jsonl").read_text().splitlines()
            assert [json.loads(line)["i"] for line in lines] == [0, 1, 2, 3]


# -- CLI budget construction --------------------------------------------


class TestBuildBudget:
    def _args(self, **overrides):
        import argparse

        base = {"disk_quota": None, "mem_budget": None, "deadline": None}
        base.update(overrides)
        return argparse.Namespace(**base)

    def test_no_flags_no_budget(self):
        from repro.harness.cli import build_budget

        assert build_budget(self._args()) is None

    def test_flags_parse_human_sizes(self):
        from repro.harness.cli import build_budget

        budget = build_budget(
            self._args(disk_quota="2GB", mem_budget="512MB", deadline=3600.0)
        )
        assert budget.disk_quota == 2 * 1024**3
        assert budget.mem_budget == 512 * 1024**2
        assert budget.deadline_s == 3600.0
