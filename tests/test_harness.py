"""Tests for the table/figure regeneration harness."""

import pytest

from repro.harness import fig4, fig5, fig6, fig7, fig8, table1, table2
from repro.harness.report import render_series_table, render_table, sparkline
from repro.units import MB, PAPER_CACHE_SWEEP, PAPER_LINE_SWEEP
from repro.workloads.profiles import PAPER_TABLE2, WORKLOAD_NAMES


class TestReportRendering:
    def test_render_table_aligns(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # uniform width

    def test_sparkline_shape(self):
        assert len(sparkline([1, 2, 3])) == 3
        assert sparkline([5, 5, 5]) == "▁▁▁"
        assert sparkline([]) == ""
        spark = sparkline([0, 10])
        assert spark[0] < spark[1]

    def test_series_table_includes_all_series(self):
        text = render_series_table("x", ["a", "b"], {"s1": [1.0, 2.0], "s2": [3.0, 4.0]})
        assert "s1" in text and "s2" in text


class TestTable1:
    def test_all_workloads_present(self):
        rows = table1.generate()
        assert [r.workload for r in rows] == list(WORKLOAD_NAMES)
        for row in rows:
            assert row.paper_parameters and row.substitute

    def test_main_prints(self, capsys):
        table1.main()
        output = capsys.readouterr().out
        assert "Kosarak" in output and "HGBASE" in output


class TestTable2:
    def test_rows_complete(self):
        rows = table2.generate()
        assert len(rows) == 8
        for row in rows:
            paper = PAPER_TABLE2[row.workload]
            assert row.ipc_paper == paper.ipc
            assert row.dl1_mpki_model == pytest.approx(paper.dl1_mpki, rel=0.15)

    def test_main_prints(self, capsys):
        table2.main()
        output = capsys.readouterr().out
        assert "IPC" in output and "DL2 MPKI" in output


class TestCacheSweepFigures:
    @pytest.mark.parametrize("module,cores", [(fig4, 8), (fig5, 16), (fig6, 32)])
    def test_series_cover_sweep(self, module, cores):
        figure = module.generate()
        assert figure.axis_values == PAPER_CACHE_SWEEP
        assert set(figure.series) == set(WORKLOAD_NAMES)
        assert str(cores) in figure.title

    def test_fig4_knees_match_paper_readings(self):
        knees = fig4.generate().knees
        assert knees["SHOT"] == 32 * MB
        assert knees["MDS"] is None
        assert knees["FIMI"] == 16 * MB

    def test_fig6_shot_knee_scales(self):
        assert fig6.generate().knees["SHOT"] == 128 * MB

    @pytest.mark.parametrize("module", [fig4, fig5, fig6])
    def test_main_prints(self, module, capsys):
        module.main()
        output = capsys.readouterr().out
        assert "working-set knee" in output


class TestFig7:
    def test_axis_and_series(self):
        figure = fig7.generate()
        assert figure.axis_values == PAPER_LINE_SWEEP
        assert set(figure.series) == set(WORKLOAD_NAMES)

    def test_reduction_factors_partition(self):
        factors = fig7.reduction_factors(fig7.generate())
        from repro.workloads.profiles import LINE_RESPONDERS

        for name in LINE_RESPONDERS:
            assert factors[name] > 2.5
        for name in set(WORKLOAD_NAMES) - set(LINE_RESPONDERS):
            assert factors[name] < 2.5

    def test_main_prints(self, capsys):
        fig7.main()
        assert "reduction factor" in capsys.readouterr().out


class TestFig8:
    def test_rows_and_orderings(self):
        rows = fig8.generate()
        assert len(rows) == 8
        by_name = {r.workload: r for r in rows}
        assert not by_name["SNP"].parallel_wins
        assert not by_name["MDS"].parallel_wins
        assert by_name["SHOT"].parallel_wins

    def test_main_prints(self, capsys):
        fig8.main()
        output = capsys.readouterr().out
        assert "Serial gain" in output and "%" in output


class TestRunAll:
    def test_runall_executes_everything(self, capsys):
        from repro.harness import runall

        runall.main([])
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "Table 2" in output
        for figure_number in (4, 5, 6, 7, 8):
            assert f"Figure {figure_number}" in output
