"""Tests for CSV export and the extended runall/describe harnesses."""

import csv

import pytest

from repro.harness import describe, export, runall
from repro.workloads.profiles import WORKLOAD_NAMES


class TestExport:
    def test_export_all_writes_every_exhibit(self, tmp_path):
        paths = export.export_all(tmp_path)
        names = {p.name for p in paths}
        assert names == {
            "table2.csv", "fig4.csv", "fig5.csv", "fig6.csv", "fig7.csv",
            "fig8.csv", "projection.csv",
        }
        for path in paths:
            assert path.exists() and path.stat().st_size > 0

    def test_sweep_csv_structure(self, tmp_path):
        from repro.harness import fig4

        path = tmp_path / "fig4.csv"
        export.write_sweep_csv(fig4.generate(), path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "workload"
        assert len(rows) == 1 + 8
        assert {r[0] for r in rows[1:]} == set(WORKLOAD_NAMES)
        # Data cells parse as floats.
        float(rows[1][1])

    def test_table2_csv_round_trips_values(self, tmp_path):
        path = tmp_path / "table2.csv"
        export.write_table2_csv(path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        by_name = {r["workload"]: r for r in rows}
        assert float(by_name["PLSA"]["ipc_paper"]) == 1.08
        assert float(by_name["MDS"]["dl2_mpki_model"]) == pytest.approx(18.95, rel=0.1)

    def test_projection_csv_verdicts(self, tmp_path):
        path = tmp_path / "projection.csv"
        export.write_projection_csv(path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        candidates = {r["workload"] for r in rows if r["dram_candidate"] == "True"}
        assert len(candidates) == 5


class TestRunAllCLI:
    def test_default_prints_paper_exhibits(self, capsys):
        assert runall.main([]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "Figure 8" in output
        assert "projection" not in output

    def test_csv_flag_writes_files(self, tmp_path, capsys):
        assert runall.main(["--csv", str(tmp_path / "out")]) == 0
        output = capsys.readouterr().out
        assert "wrote" in output
        assert (tmp_path / "out" / "fig7.csv").exists()


class TestSampledExport:
    def _figure(self):
        from repro.harness.figures import SweepFigure

        return SweepFigure(
            title="Sampled sweep",
            axis_label="LLC size",
            axis_values=(1 << 20, 2 << 20),
            series={"FIMI": (3.4, 0.4)},
            knees={"FIMI": None},
            sampled=True,
            errors={"FIMI": (0.15, 0.03)},
        )

    def test_sampled_csv_appends_flag_and_error_columns(self, tmp_path):
        path = tmp_path / "sampled.csv"
        export.write_sweep_csv(self._figure(), path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        # Positional compatibility: workload + value columns first, the
        # sampled flag and error columns strictly after.
        assert rows[0][:3] == ["workload", "1MB", "2MB"]
        assert rows[0][3:] == ["sampled", "err:1MB", "err:2MB"]
        assert rows[1][:3] == ["FIMI", "3.4", "0.4"]
        assert rows[1][3] == "1"
        assert [float(cell) for cell in rows[1][4:]] == [0.15, 0.03]

    def test_exact_csv_has_no_sampled_columns(self, tmp_path):
        from repro.harness import fig4

        path = tmp_path / "fig4.csv"
        export.write_sweep_csv(fig4.generate(), path)
        with open(path) as handle:
            header = next(csv.reader(handle))
        assert "sampled" not in header

    def test_render_labels_sampled_and_attaches_bars(self):
        rendered = self._figure().render()
        assert "[sampled]" in rendered
        assert "3.40±0.15" in rendered

    def test_series_table_errors_without_sampled_flag(self):
        from repro.harness.report import render_series_table

        rendered = render_series_table(
            "axis", ["a"], {"s": [1.0]}, title="T", errors={"s": [0.5]}
        )
        assert "1.00±0.50" in rendered
        assert "[sampled]" not in rendered


class TestDescribe:
    def test_model_card_contents(self):
        card = describe.describe("SHOT")
        assert "SHOT" in card
        assert "Calibrated component mixture" in card
        assert "shot-stream" in card
        assert "Thread scaling" in card

    def test_cli_single_workload(self, capsys):
        assert describe.main(["FIMI"]) == 0
        output = capsys.readouterr().out
        assert "fimi-tree" in output

    def test_cli_all_workloads(self, capsys):
        assert describe.main([]) == 0
        output = capsys.readouterr().out
        for name in WORKLOAD_NAMES:
            assert name in output
