"""Tests for CSV export and the extended runall/describe harnesses."""

import csv

import pytest

from repro.harness import describe, export, runall
from repro.workloads.profiles import WORKLOAD_NAMES


class TestExport:
    def test_export_all_writes_every_exhibit(self, tmp_path):
        paths = export.export_all(tmp_path)
        names = {p.name for p in paths}
        assert names == {
            "table2.csv", "fig4.csv", "fig5.csv", "fig6.csv", "fig7.csv",
            "fig8.csv", "projection.csv",
        }
        for path in paths:
            assert path.exists() and path.stat().st_size > 0

    def test_sweep_csv_structure(self, tmp_path):
        from repro.harness import fig4

        path = tmp_path / "fig4.csv"
        export.write_sweep_csv(fig4.generate(), path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "workload"
        assert len(rows) == 1 + 8
        assert {r[0] for r in rows[1:]} == set(WORKLOAD_NAMES)
        # Data cells parse as floats.
        float(rows[1][1])

    def test_table2_csv_round_trips_values(self, tmp_path):
        path = tmp_path / "table2.csv"
        export.write_table2_csv(path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        by_name = {r["workload"]: r for r in rows}
        assert float(by_name["PLSA"]["ipc_paper"]) == 1.08
        assert float(by_name["MDS"]["dl2_mpki_model"]) == pytest.approx(18.95, rel=0.1)

    def test_projection_csv_verdicts(self, tmp_path):
        path = tmp_path / "projection.csv"
        export.write_projection_csv(path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        candidates = {r["workload"] for r in rows if r["dram_candidate"] == "True"}
        assert len(candidates) == 5


class TestRunAllCLI:
    def test_default_prints_paper_exhibits(self, capsys):
        assert runall.main([]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "Figure 8" in output
        assert "projection" not in output

    def test_csv_flag_writes_files(self, tmp_path, capsys):
        assert runall.main(["--csv", str(tmp_path / "out")]) == 0
        output = capsys.readouterr().out
        assert "wrote" in output
        assert (tmp_path / "out" / "fig7.csv").exists()


class TestDescribe:
    def test_model_card_contents(self):
        card = describe.describe("SHOT")
        assert "SHOT" in card
        assert "Calibrated component mixture" in card
        assert "shot-stream" in card
        assert "Thread scaling" in card

    def test_cli_single_workload(self, capsys):
        assert describe.main(["FIMI"]) == 0
        output = capsys.readouterr().out
        assert "fimi-tree" in output

    def test_cli_all_workloads(self, capsys):
        assert describe.main([]) == 0
        output = capsys.readouterr().out
        for name in WORKLOAD_NAMES:
            assert name in output
