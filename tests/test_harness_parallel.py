"""The parallel sweep runner's determinism contract.

``repro-runall --jobs N`` must produce byte-identical output to the
serial run: ``parallel_map`` keeps results in item order, and every
grid task is a pure function of its arguments.  These tests exercise
the primitive, the figure harnesses on both paths, and the full runall
output end to end.
"""

from __future__ import annotations

import io
from contextlib import redirect_stdout

from repro.harness import fig4, fig7, projection, runall, table2
from repro.harness.figures import _mpki_point
from repro.harness.parallel import default_jobs, parallel_map, resolve_jobs


class TestParallelMap:
    POINTS = [("FIMI", 8, 4 * 2**20, 64), ("SNP", 8, 8 * 2**20, 64)] * 3

    def test_serial_and_parallel_results_identical(self):
        serial = parallel_map(_mpki_point, self.POINTS, jobs=None)
        parallel = parallel_map(_mpki_point, self.POINTS, jobs=2)
        assert serial == parallel

    def test_order_preserved(self):
        values = parallel_map(_mpki_point, self.POINTS, jobs=2)
        assert values[0] == values[2] == values[4]
        assert values[1] == values[3] == values[5]

    def test_empty_items(self):
        assert parallel_map(_mpki_point, [], jobs=4) == []

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) == default_jobs()
        assert default_jobs() >= 1


class TestExhibitsUnderJobs:
    def test_fig4_parallel_equals_serial(self):
        assert fig4.generate() == fig4.generate(jobs=2)

    def test_fig7_parallel_equals_serial(self):
        assert fig7.generate() == fig7.generate(jobs=2)

    def test_table2_parallel_equals_serial(self):
        assert table2.generate() == table2.generate(jobs=2)

    def test_projection_parallel_equals_serial(self):
        assert projection.generate() == projection.generate(jobs=2)


class TestRunallByteIdentical:
    def test_jobs_output_matches_serial(self):
        def capture(argv: list[str]) -> str:
            buffer = io.StringIO()
            with redirect_stdout(buffer):
                assert runall.main(argv) == 0
            return buffer.getvalue()

        serial = capture([])
        parallel = capture(["--jobs", "2"])
        assert serial  # the run actually printed the exhibits
        assert parallel == serial
