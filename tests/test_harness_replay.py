"""Differential tests for the multi-config replay engine.

The engine's whole value rests on one claim: replaying a captured log
into a fresh emulator produces *exactly* the statistics a fresh
``CoSimPlatform.run`` would — every field, per-core splits and 500 µs
window samples included.  ``CoSimResult`` is a frozen dataclass tree
(PerformanceData → CacheStats → per-core dicts, WindowSample list), so
one ``==`` compares everything at once; these tests assert it across
workloads, trace sources, and cache geometries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.emulator import DragonheadConfig
from repro.core.cosim import CoSimPlatform
from repro.harness import cli
from repro.harness.replay import (
    EVENT_DATA,
    EVENT_PROGRESS,
    ReplayLog,
    capture_replay_log,
    load_or_capture,
    log_cache_key,
    replay,
    replay_map,
    replay_sweep,
    size_sweep_configs,
)
from repro.trace.cache import TraceCache
from repro.units import MB
from repro.workloads.registry import get_workload

#: ≥3 workloads (different mining kernels → different trace shapes).
WORKLOADS = ("FIMI", "RSEARCH", "MDS")

#: ≥3 geometries: size, line size, and associativity all vary.
GEOMETRIES = (
    DragonheadConfig(cache_size=1 * MB, line_size=64, associativity=16),
    DragonheadConfig(cache_size=4 * MB, line_size=128, associativity=8),
    DragonheadConfig(cache_size=16 * MB, line_size=256, associativity=4),
)


class TestReplayEquivalence:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_kernel_replay_equals_fresh_runs(self, name):
        workload = get_workload(name)
        log = capture_replay_log(workload.kernel_guest(), cores=4)
        for config in GEOMETRIES:
            fresh = CoSimPlatform(config).run(workload.kernel_guest(), cores=4)
            replayed = replay(log, config)
            # Dataclass equality covers instructions, accesses, filtered
            # count, hit/miss/eviction totals, the per-core dicts, and
            # every window sample.
            assert replayed == fresh, f"{name} diverged at {config}"

    def test_synthetic_replay_equals_fresh_runs(self):
        workload = get_workload("PLSA")
        guest = workload.synthetic_guest(accesses_per_thread=8192, scale=1 / 256)
        log = capture_replay_log(guest, cores=2)
        for config in GEOMETRIES:
            guest = workload.synthetic_guest(accesses_per_thread=8192, scale=1 / 256)
            fresh = CoSimPlatform(config).run(guest, cores=2)
            assert replay(log, config) == fresh

    def test_nondefault_quantum_and_noise(self):
        workload = get_workload("FIMI")
        config = DragonheadConfig(cache_size=2 * MB)
        log = capture_replay_log(
            workload.kernel_guest(), cores=4, quantum=1024, boot_noise_accesses=512
        )
        fresh = CoSimPlatform(config, quantum=1024, boot_noise_accesses=512).run(
            workload.kernel_guest(), cores=4
        )
        assert replay(log, config) == fresh

    def test_sweep_results_align_with_configs(self):
        workload = get_workload("FIMI")
        configs = size_sweep_configs([1 * MB, 4 * MB, 16 * MB])
        results = replay_sweep(workload.kernel_guest(), 4, configs)
        assert len(results) == len(configs)
        # Misses are monotonically non-increasing in cache size.
        misses = [r.llc_stats.misses for r in results]
        assert misses == sorted(misses, reverse=True)


def _adversarial_log() -> ReplayLog:
    """A hand-built log exercising the batched pipeline's edge cases.

    Single-access segments interleave with multi-thousand-access
    batches, core ids flip between adjacent one-access segments, one
    run walks consecutive lines across all four banks, and progress
    reports land one cycle short of, exactly on, and several windows
    past the 50 000-cycle boundary — including a zero-delta repeat.
    """
    rng = np.random.default_rng(31)
    addresses: list[np.ndarray] = []
    kinds: list[np.ndarray] = []
    pcs: list[np.ndarray] = []
    events: list[tuple[int, int, int]] = []
    count = 0

    def data(length: int, core: int, lines: np.ndarray | None = None) -> None:
        nonlocal count
        if lines is None:
            lines = rng.integers(0, 1 << 18, size=length)
        base = np.asarray(lines, dtype=np.uint64) * np.uint64(64)
        addresses.append(base + rng.integers(0, 64, size=length).astype(np.uint64))
        kinds.append(rng.integers(0, 2, size=length).astype(np.uint8))
        pcs.append(rng.integers(0, 1 << 40, size=length).astype(np.uint64))
        count += length
        events.append((EVENT_DATA, count, core))

    def progress(instructions: int, cycles: int) -> None:
        events.append((EVENT_PROGRESS, instructions, cycles))

    data(1, 0)  # single accesses with a core flip between them
    data(1, 1)
    data(4096, 2)  # large batch
    progress(1_000, 49_999)  # one cycle short of the first boundary
    data(1, 2)  # same core as the previous segment: no CORE_ID reissue
    progress(2_000, 50_000)  # exactly on the boundary
    data(8, 3, lines=np.arange(8))  # a run crossing all four banks
    data(2_048, 0)
    progress(9_000, 260_000)  # one report crossing four boundaries
    data(1, 1)  # rapid flips: CORE_ID chatter around single accesses
    data(1, 0)
    data(1, 1)
    data(733, 1)  # extends the open core-1 segment
    progress(9_500, 260_000)  # zero-cycle repeat: counters hold
    data(511, 2)
    progress(12_000, 312_345)
    return ReplayLog(
        workload="ADVERSARIAL",
        cores=4,
        quantum=4096,
        boot_noise_accesses=0,
        addresses=np.concatenate(addresses),
        kinds=np.concatenate(kinds),
        pcs=np.concatenate(pcs),
        events=np.array(events, dtype=np.uint64),
        filtered=137,
        instructions=12_000,
    )


class TestAdversarialStream:
    def test_mixed_size_stream_batched_equals_per_access(self, tmp_path):
        """Field-for-field ``CoSimResult`` equality between the batched
        fast path and the per-access message loop (forced by installing
        a checkpoint observer whose interval never comes due)."""
        log = _adversarial_log()
        for config in GEOMETRIES:
            batched = replay(log, config)
            per_access = replay(
                log,
                config,
                checkpoint_every=1 << 30,
                checkpoint_path=str(tmp_path / "never-due.ckpt"),
            )
            assert batched == per_access, f"paths diverged at {config}"

    def test_batched_run_passes_sample_audit(self):
        """The differential LRU oracle, sampled, stays green over a
        batched run — the banks see the same access-for-access stream
        the scalar path would feed them."""
        log = _adversarial_log()
        result = replay(log, GEOMETRIES[0], audit="sample")
        assert result.audit is not None and result.audit.ok


class TestParallelFanOut:
    def test_process_fanout_matches_serial(self):
        log = capture_replay_log(get_workload("FIMI").kernel_guest(), cores=4)
        configs = size_sweep_configs([1 * MB, 2 * MB, 4 * MB, 8 * MB])
        serial = replay_map(log, configs, jobs=None)
        parallel = replay_map(log, configs, jobs=2)
        assert serial == parallel

    def test_fanout_from_cache_entry_is_memory_mapped(self, tmp_path):
        cache = TraceCache(tmp_path)
        workload = get_workload("FIMI")
        log, entry_dir = load_or_capture(
            workload.kernel_guest(), 4, trace_cache=cache
        )
        assert entry_dir is not None
        configs = size_sweep_configs([1 * MB, 4 * MB])
        from_disk = replay_map(log, configs, jobs=2, entry_dir=entry_dir)
        inline = replay_map(log, configs, jobs=None)
        assert from_disk == inline


class TestTraceCacheIntegration:
    def test_warm_cache_skips_generation(self, tmp_path):
        """Second run with the same identity never calls the workload."""
        cache = TraceCache(tmp_path)
        workload = get_workload("FIMI")
        cold, _ = load_or_capture(workload.kernel_guest(), 4, trace_cache=cache)
        assert (cache.stats.misses, cache.stats.stores) == (1, 1)

        class ExplodingGuest:
            name = workload.kernel_guest().name

            def thread_streams(self, cores):
                raise AssertionError("generation ran on a warm cache")

        warm, _ = load_or_capture(ExplodingGuest(), 4, trace_cache=cache)
        assert cache.stats.hits == 1
        assert warm.accesses == cold.accesses
        for config in (GEOMETRIES[0], GEOMETRIES[1]):
            assert replay(warm, config) == replay(cold, config)

    def test_key_separates_sources_and_parameters(self):
        base = dict(workload="FIMI", cores=4, quantum=4096, boot_noise_accesses=8192)
        kernel = log_cache_key(**base, extra={"source": "kernel"})
        synthetic = log_cache_key(
            **base, extra={"source": "synthetic", "accesses": 65536, "scale": "1/256"}
        )
        other_count = log_cache_key(
            **base, extra={"source": "synthetic", "accesses": 1024, "scale": "1/256"}
        )
        assert len({kernel, synthetic, other_count}) == 3

    def test_cli_warm_run_reports_hit(self, tmp_path, capsys):
        argv = [
            "--workload",
            "FIMI",
            "--cores",
            "2",
            "--cache",
            "1MB",
            "--trace-cache",
            str(tmp_path),
        ]
        assert cli.main(argv) == 0
        cold_out = capsys.readouterr().out
        assert "misses=1 stores=1" in cold_out
        assert cli.main(argv) == 0
        warm_out = capsys.readouterr().out
        assert "hits=1 misses=0 stores=0" in warm_out
        # identical readout either way, cache-counter line aside
        strip = lambda text: [
            line for line in text.splitlines() if "trace cache" not in line
        ]
        assert strip(cold_out) == strip(warm_out)

    def test_cli_sweep_over_one_captured_trace(self, tmp_path, capsys):
        argv = [
            "--workload",
            "FIMI",
            "--cores",
            "2",
            "--cache",
            "1MB,4MB",
            "--trace-cache",
            str(tmp_path),
        ]
        assert cli.main(argv) == 0
        out = capsys.readouterr().out
        assert "Cache-size sweep (2 configurations" in out
        assert "misses=1 stores=1" in out
