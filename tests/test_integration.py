"""End-to-end integration tests across the whole stack.

The headline test mirrors the methodology claim: for a workload's
synthetic FSB traffic at reduced scale, the *exact path* (DEX scheduling
→ bus → Dragonhead emulation) agrees with the *model path* (analytic
reuse profiles) on where the working-set knee falls and on the
steady-state MPKI floor.
"""

import pytest

from repro.cache.emulator import DragonheadConfig
from repro.core.cosim import CoSimPlatform
from repro.units import MB
from repro.workloads import get_workload


def steady_state_mpki(
    workload, cache_size: int, cores: int, scale: float, accesses: int = 30_000
) -> float:
    """Warm up, clear CB counters, measure a second identical run.

    The measured guest reuses the warm-up seed so deterministic scans
    revisit the same addresses — the steady-state regime the analytic
    models describe.
    """
    platform = CoSimPlatform(DragonheadConfig(cache_size=cache_size))
    warmup = workload.guest_workload(
        "synthetic", accesses_per_thread=accesses, scale=scale
    )
    platform.softsdv.run_workload(warmup, cores)
    platform.emulator.reset_statistics()
    measured = workload.guest_workload(
        "synthetic", accesses_per_thread=accesses, scale=scale
    )
    scheduler = platform.softsdv.run_workload(measured, cores)
    return 1000.0 * platform.emulator.stats.misses / scheduler.instructions_retired


class TestModelVsExactAgreement:
    """The co-sim analog of validating a model against hardware."""

    @pytest.mark.parametrize("name", ["SHOT", "VIEWTYPE"])
    def test_knee_location_agrees(self, name):
        workload = get_workload(name)
        scale = 1 / 8
        cores = 4
        small = steady_state_mpki(workload, 1 * MB, cores, scale)
        large = steady_state_mpki(workload, 8 * MB, cores, scale)
        model_small = workload.model.llc_mpki(int(1 * MB / scale), 64, cores)
        model_large = workload.model.llc_mpki(int(8 * MB / scale), 64, cores)
        # Both paths see the drop from below to above the working set.
        assert small > large
        assert model_small > model_large
        # And the steady-state floor agrees within 2x (shape, not absolute).
        assert large == pytest.approx(model_large, rel=1.0)

    def test_mds_matrix_exceeds_cache_on_both_paths(self):
        """MDS's matrix never fits: misses persist on the exact path the
        way the flat Figure 4 curve predicts."""
        workload = get_workload("MDS")
        scale = 1 / 256  # 300MB matrix → ~1.2MB; still above the 1MB LLC
        mpki_1mb = steady_state_mpki(workload, 1 * MB, 2, scale, accesses=120_000)
        mpki_floor_model = workload.model.llc_mpki(256 * MB, 64, 2)
        assert mpki_1mb > 0.3 * mpki_floor_model


class TestFullPlatformProtocol:
    def test_boot_run_read_cycle(self):
        """A complete platform session: boot noise filtered, workload
        measured, windows sampled, counters synchronized."""
        workload = get_workload("PLSA")
        platform = CoSimPlatform(
            DragonheadConfig(cache_size=1 * MB), boot_noise_accesses=1000
        )
        result = platform.run(workload.kernel_guest(), cores=2)
        assert result.filtered == 2000
        assert result.instructions > 0
        assert result.performance.cycles_completed > 0
        # Sampled windows account for all emulated accesses.
        assert sum(s.accesses for s in result.samples) == result.accesses

    def test_consecutive_sessions_on_one_emulator(self):
        """START resets session counters; cache state persists."""
        workload = get_workload("FIMI")
        platform = CoSimPlatform(DragonheadConfig(cache_size=4 * MB))
        first = platform.softsdv.run_workload(workload.kernel_guest(), 2)
        misses_first = platform.emulator.stats.misses
        platform.softsdv.run_workload(workload.kernel_guest(), 2)
        misses_second = platform.emulator.stats.misses - misses_first
        # Second run reuses the warmed cache: strictly fewer misses.
        assert misses_second < misses_first


class TestKernelTraceMatchesModelCharacter:
    @pytest.mark.parametrize(
        "name,min_stride_fraction",
        [("SHOT", 0.8), ("PLSA", 0.6), ("MDS", 0.4)],
    )
    def test_streaming_workloads_have_strided_kernels(
        self, name, min_stride_fraction
    ):
        """Workloads the model calls stream-dominated produce kernel
        traces dominated by constant strides."""
        from repro.trace.stats import dominant_stride_fraction

        run = get_workload(name).run_kernel()
        assert dominant_stride_fraction(run.trace) >= min_stride_fraction

    def test_fimi_kernel_is_pointer_heavy(self):
        """FP-growth's tree walks: low constant-stride fraction."""
        from repro.trace.stats import dominant_stride_fraction

        run = get_workload("FIMI").run_kernel()
        assert dominant_stride_fraction(run.trace) < 0.6
