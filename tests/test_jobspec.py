"""The canonical job-spec model: round-trips, keys, CLI parity."""

from __future__ import annotations

import hashlib
import json
import pickle

import pytest

from repro.errors import JobSpecError
from repro.exit_codes import (
    EXIT_AUDIT,
    EXIT_DEADLINE,
    EXIT_DEGRADED,
    EXIT_INTERNAL,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_SWEEP,
    EXIT_USAGE,
    describe,
)
from repro.harness.cli import build_parser
from repro.harness.replay import log_cache_key
from repro.harness.supervisor import SweepJournal
from repro.serve.jobspec import (
    JOBSPEC_VERSION,
    CanonicalSet,
    JobSpec,
    canonicalize,
    content_key,
    pickle_digest,
    point_content_key,
    result_digest,
)


def _spec(**overrides) -> JobSpec:
    fields = {"workload": "FIMI", "cores": 2, "source": "synthetic", "accesses": 2048}
    fields.update(overrides)
    return JobSpec(**fields)


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        spec = _spec(cache=(1024 * 1024, 4 * 1024 * 1024), repeats=3)
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_content_key_stable_across_dict_ordering(self):
        spec = _spec()
        payload = spec.to_json()
        shuffled = dict(reversed(list(payload.items())))
        assert json.dumps(payload) != json.dumps(shuffled)  # order differs
        assert JobSpec.from_json(shuffled).content_key() == spec.content_key()

    def test_content_key_round_trips_through_serialized_json(self):
        spec = _spec(sample="4096,4")
        wire = json.loads(json.dumps(spec.to_json()))
        assert JobSpec.from_json(wire).content_key() == spec.content_key()

    def test_cache_accepts_csv_ints_and_lists(self):
        csv = _spec(cache="1MB,4MB")
        ints = _spec(cache=[1024 * 1024, 4 * 1024 * 1024])
        single = _spec(cache=2 * 1024 * 1024)
        assert csv.cache == ints.cache == (1024 * 1024, 4 * 1024 * 1024)
        assert csv.content_key() == ints.content_key()
        assert single.cache == (2 * 1024 * 1024,)

    def test_scale_normalizes_to_canonical_fraction(self):
        assert _spec(scale="0.25").scale == "1/4"
        assert _spec(scale="2/8").content_key() == _spec(scale="1/4").content_key()

    def test_version_is_part_of_the_key_space(self):
        payload = _spec().to_json()
        assert payload["version"] == JOBSPEC_VERSION
        payload["version"] = JOBSPEC_VERSION + 1
        with pytest.raises(JobSpecError, match="version"):
            JobSpec.from_json(payload)


class TestValidation:
    def test_rejects_unknown_fields(self):
        payload = _spec().to_json()
        payload["cache_szie"] = [1024 * 1024]
        with pytest.raises(JobSpecError, match="cache_szie"):
            JobSpec.from_json(payload)

    def test_requires_a_workload(self):
        with pytest.raises(JobSpecError, match="workload"):
            JobSpec.from_json({"cores": 2})

    def test_rejects_non_object_payloads(self):
        with pytest.raises(JobSpecError, match="JSON object"):
            JobSpec.from_json(["FIMI"])

    def test_rejects_unknown_workloads(self):
        with pytest.raises(JobSpecError, match="NOPE"):
            _spec(workload="NOPE")

    def test_rejects_invalid_geometry(self):
        with pytest.raises(JobSpecError, match="geometry"):
            _spec(cache=(512,))  # below the Dragonhead envelope
        with pytest.raises(JobSpecError, match="geometry"):
            _spec(line=48)  # not a power of two

    def test_rejects_out_of_range_scalars(self):
        with pytest.raises(JobSpecError, match="cores"):
            _spec(cores=0)
        with pytest.raises(JobSpecError, match="cores"):
            _spec(cores=65)
        with pytest.raises(JobSpecError, match="quantum"):
            _spec(quantum=0)
        with pytest.raises(JobSpecError, match="repeats"):
            _spec(repeats=0)
        with pytest.raises(JobSpecError, match="source"):
            _spec(source="pcap")
        with pytest.raises(JobSpecError, match="scale"):
            _spec(scale="0")

    def test_rejects_bad_sample_and_inject_specs(self):
        with pytest.raises(JobSpecError, match="sample"):
            _spec(sample="not-a-spec")
        with pytest.raises(JobSpecError, match="inject"):
            _spec(inject="frobnicate=1")

    def test_sample_conflicts_with_per_pass_flags(self):
        for conflict in ({"inject": "seed=1,drop-data=0.001"},
                         {"lenient": True},
                         {"audit": "sample"}):
            with pytest.raises(JobSpecError, match="sample cannot"):
                _spec(sample="4096", **conflict)


class TestCLIMapping:
    CASES = [
        ["--workload", "FIMI"],
        ["--workload", "FIMI", "--cores", "8", "--cache", "1MB,4MB,16MB"],
        ["--workload", "SHOT", "--source", "synthetic", "--accesses", "5000",
         "--scale", "1/64", "--line", "256"],
        ["--workload", "FIMI", "--source", "synthetic", "--repeats", "4",
         "--sample", "64k,6"],
        ["--workload", "SNP", "--inject", "seed=42,drop-data=0.001"],
        ["--workload", "FIMI", "--lenient", "--audit", "sample"],
    ]

    @pytest.mark.parametrize("argv", CASES, ids=[" ".join(c) for c in CASES])
    def test_flags_map_one_to_one(self, argv):
        args = build_parser().parse_args(argv)
        spec = JobSpec.from_cli_args(args)
        reparsed = build_parser().parse_args(spec.to_cli_argv())
        assert JobSpec.from_cli_args(reparsed) == spec
        assert JobSpec.from_cli_args(reparsed).content_key() == spec.content_key()

    def test_capture_key_matches_the_cli_derivation(self):
        # The exact key_extra repro-cosim always stamped captures with:
        # pre-serving cache entries must stay warm.
        kernel = JobSpec(workload="FIMI", cores=8, quantum=2048)
        assert kernel.capture_key() == log_cache_key(
            "FIMI", 8, 2048, 8192, {"source": "kernel"}
        )
        synthetic = _spec(accesses=4096, scale="1/128", repeats=3)
        assert synthetic.capture_key() == log_cache_key(
            "FIMI", 2, 4096, 8192,
            {"source": "synthetic", "accesses": 4096, "scale": "1/128", "repeats": 3},
        )

    def test_defaults_match_the_parser_defaults(self):
        args = build_parser().parse_args(["--workload", "FIMI"])
        spec = JobSpec.from_cli_args(args)
        assert spec == JobSpec(workload="FIMI")


class TestCoalesceKeys:
    def test_same_capture_different_geometry_coalesces(self):
        a = _spec(cache=(1024 * 1024,))
        b = _spec(cache=(4 * 1024 * 1024,), line=256)
        assert a.content_key() != b.content_key()
        assert a.capture_key() == b.capture_key()
        assert a.coalesce_key() == b.coalesce_key()

    def test_per_pass_knobs_split_the_pass(self):
        plain = JobSpec(workload="FIMI")
        assert JobSpec(workload="FIMI", lenient=True).coalesce_key() != plain.coalesce_key()
        assert (
            JobSpec(workload="FIMI", inject="seed=1,drop-data=0.001").coalesce_key()
            != plain.coalesce_key()
        )
        assert JobSpec(workload="FIMI", sample="4096").coalesce_key() != plain.coalesce_key()

    def test_capture_fields_split_the_capture(self):
        base = _spec()
        assert _spec(cores=4).capture_key() != base.capture_key()
        assert _spec(quantum=8192).capture_key() != base.capture_key()
        assert _spec(accesses=4096).capture_key() != base.capture_key()


class TestContentKeyHelpers:
    def test_point_content_key_matches_the_journal(self):
        def task(item):
            return item

        item = {"b": 2, "a": {1, 2, 3}}
        identity = f"{task.__module__}.{task.__qualname__}"
        assert SweepJournal.point_key(task, item) == point_content_key(identity, item)
        # And the historical derivation, byte for byte: existing
        # journals and ledgers must keep resuming.
        expected = hashlib.sha256(
            identity.encode("utf-8")
            + b"\x1f"
            + pickle.dumps(canonicalize(item), protocol=4)
        ).hexdigest()
        assert point_content_key(identity, item) == expected

    def test_canonicalize_orders_dicts_and_sets(self):
        left = canonicalize({"b": {2, 1}, "a": [1, {"y": 2, "x": 1}]})
        right = canonicalize({"a": [1, {"x": 1, "y": 2}], "b": {1, 2}})
        assert pickle.dumps(left, protocol=4) == pickle.dumps(right, protocol=4)
        assert isinstance(canonicalize({1, 2}), CanonicalSet)
        # Sets stay distinct from tuples in the *key space* (the bytes),
        # even though the canonical form compares tuple-equal.
        assert pickle.dumps(canonicalize({1, 2}), protocol=4) != pickle.dumps(
            (1, 2), protocol=4
        )

    def test_digests_are_order_sensitive(self):
        assert result_digest([1, 2]) != result_digest([2, 1])
        assert pickle_digest("x") == hashlib.sha256(
            pickle.dumps("x", protocol=4)
        ).hexdigest()

    def test_content_key_is_the_trace_cache_spelling(self):
        from repro.trace.cache import cache_key

        fields = {"kind": "jobspec", "workload": "FIMI"}
        assert content_key(fields) == cache_key(fields)


class TestExitCodes:
    def test_codes_are_distinct_and_documented(self):
        codes = [
            EXIT_OK,
            EXIT_INTERNAL,
            EXIT_USAGE,
            EXIT_AUDIT,
            EXIT_DEGRADED,
            EXIT_SWEEP,
            EXIT_DEADLINE,
            EXIT_INTERRUPTED,
        ]
        assert len(set(codes)) == len(codes)
        for code in codes:
            assert describe(code) != f"exit {code}"
        assert describe(97) == "exit 97"

    def test_conventions(self):
        assert EXIT_USAGE == 2  # argparse's own
        assert EXIT_DEADLINE == 124  # timeout(1)
        assert EXIT_INTERRUPTED == 130  # 128 + SIGINT
