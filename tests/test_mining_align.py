"""Tests for Smith-Waterman alignment (PLSA)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mining.align import (
    sw_best_score,
    sw_score_matrix,
    sw_traceback,
    traced_plsa_kernel,
)
from repro.mining.datasets import dna_pair
from repro.trace.instrument import MemoryArena, TraceRecorder


def encode(text: str) -> np.ndarray:
    return np.array(["ACGT".index(c) for c in text], dtype=np.uint8)


class TestScoreMatrix:
    def test_known_alignment(self):
        # Classic example: identical substring scores match * length.
        a = encode("ACGT")
        b = encode("ACGT")
        h = sw_score_matrix(a, b)
        assert h.max() == 8  # 4 matches x 2

    def test_no_negative_cells(self):
        a, b = dna_pair(length=40, seed=3)
        assert sw_score_matrix(a, b).min() >= 0

    def test_disjoint_sequences_score_low(self):
        a = encode("AAAA")
        b = encode("CCCC")
        assert sw_score_matrix(a, b).max() == 0

    def test_gap_handling(self):
        a = encode("ACGTACGT")
        b = encode("ACGACGT")  # one deletion
        best, path = sw_traceback(a, b)
        assert best >= 2 * 7 - 3  # 7 matches minus one gap


class TestLinearSpace:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_matches_full_matrix(self, seed):
        a, b = dna_pair(length=60, seed=seed)
        assert sw_best_score(a, b) == int(sw_score_matrix(a, b).max())

    def test_asymmetric_lengths(self):
        rng = np.random.default_rng(7)
        a = rng.integers(0, 4, size=30, dtype=np.uint8)
        b = rng.integers(0, 4, size=90, dtype=np.uint8)
        assert sw_best_score(a, b) == int(sw_score_matrix(a, b).max())

    def test_symmetry(self):
        a, b = dna_pair(length=50, seed=9)
        assert sw_best_score(a, b) == sw_best_score(b, a)


class TestTraceback:
    def test_path_is_increasing(self):
        a, b = dna_pair(length=50, seed=11)
        _, path = sw_traceback(a, b)
        for (i1, j1), (i2, j2) in zip(path, path[1:]):
            assert i2 > i1 and j2 > j1

    def test_homologs_align_long(self):
        a, b = dna_pair(length=80, divergence=0.05, seed=13)
        best, path = sw_traceback(a, b)
        assert len(path) > 40  # long local alignment found


class TestTracedKernel:
    def test_wavefront_partitioning(self):
        results = []
        for threads, thread_id in ((1, 0), (2, 0), (2, 1)):
            recorder = TraceRecorder()
            best = traced_plsa_kernel(
                recorder,
                MemoryArena(),
                length=96,
                threads=threads,
                thread_id=thread_id,
            )
            results.append((best, recorder.access_count))
        # Each of two threads traces roughly half the single-thread work.
        single_accesses = results[0][1]
        for _, accesses in results[1:]:
            assert accesses < 0.75 * single_accesses

    def test_rejects_bad_thread_id(self):
        with pytest.raises(ConfigurationError):
            traced_plsa_kernel(
                TraceRecorder(), MemoryArena(), length=32, threads=2, thread_id=2
            )

    def test_streaming_access_pattern(self):
        from repro.trace.stats import dominant_stride_fraction

        recorder = TraceRecorder()
        traced_plsa_kernel(recorder, MemoryArena(), length=96)
        assert dominant_stride_fraction(recorder.trace()) > 0.6
