"""Tests for the Apriori baseline and its agreement with FP-growth."""

import pytest

from repro.mining.apriori import apriori, generate_candidates
from repro.mining.datasets import transactions
from repro.mining.fpgrowth import fp_growth
from repro.trace.instrument import MemoryArena, TraceRecorder


class TestCandidateGeneration:
    def test_join_on_shared_prefix(self):
        frequent = [(1, 2), (1, 3), (2, 3)]
        assert generate_candidates(frequent) == [(1, 2, 3)]

    def test_prune_infrequent_subsets(self):
        # (1,2,3) needs (2,3) frequent; it is not.
        frequent = [(1, 2), (1, 3)]
        assert generate_candidates(frequent) == []

    def test_no_join_without_prefix_match(self):
        assert generate_candidates([(1, 2), (3, 4)]) == []


class TestAprioriCorrectness:
    @pytest.mark.parametrize("seed,min_support", [(3, 20), (7, 12)])
    def test_agrees_with_fp_growth(self, seed, min_support):
        data = transactions(n_transactions=150, n_items=20, avg_length=5, seed=seed)
        assert apriori(data, min_support) == fp_growth(data, min_support)

    def test_max_size_truncates(self):
        data = transactions(n_transactions=100, n_items=15, seed=5)
        limited = apriori(data, min_support=10, max_size=2)
        assert all(len(itemset) <= 2 for itemset in limited)

    def test_empty_database(self):
        assert apriori([], min_support=1) == {}

    def test_apriori_property_holds(self):
        data = transactions(n_transactions=150, n_items=15, seed=9)
        mined = apriori(data, min_support=12)
        for itemset, support in mined.items():
            for drop in range(len(itemset)):
                subset = itemset[:drop] + itemset[drop + 1 :]
                if subset:
                    assert mined[subset] >= support


class TestAprioriMemoryBehaviour:
    def test_rescans_database_per_level(self):
        """Apriori's signature: one full database pass per itemset size
        — many times FP-growth's two passes."""
        data = transactions(n_transactions=120, n_items=15, avg_length=6, seed=11)
        recorder = TraceRecorder()
        result = apriori(data, min_support=8, recorder=recorder, arena=MemoryArena())
        database_items = sum(len(t) for t in data)
        levels = max(len(k) for k in result) if result else 0
        # At least (levels) full scans recorded (level 1 + each join level).
        assert recorder.access_count >= database_items * levels
