"""Tests for Bayesian-network structure learning (SNP)."""

import math

import numpy as np
import pytest

from repro.mining.bayesnet import (
    BayesNet,
    family_bic,
    family_counts,
    hill_climb,
    score,
    traced_snp_kernel,
)
from repro.mining.datasets import genotype_matrix
from repro.trace.instrument import MemoryArena, TraceRecorder


class TestFamilyCounts:
    def test_no_parents(self):
        data = np.array([[0], [1], [1]], dtype=np.uint8)
        counts = family_counts(data, node=0, parents=())
        assert counts.tolist() == [[1, 2]]

    def test_one_parent(self):
        data = np.array([[0, 0], [0, 1], [1, 1], [1, 1]], dtype=np.uint8)
        counts = family_counts(data, node=1, parents=(0,))
        # parent=0: child values 0:1, 1:1 ; parent=1: child 1 twice
        assert counts.tolist() == [[1, 1], [0, 2]]

    def test_two_parents_config_indexing(self):
        data = np.array([[1, 1, 0]], dtype=np.uint8)
        counts = family_counts(data, node=2, parents=(0, 1))
        assert counts[3, 0] == 1  # both parents 1 → config 0b11


class TestFamilyBIC:
    def test_dependent_parent_raises_score(self):
        rng = np.random.default_rng(3)
        parent = (rng.random(500) < 0.5).astype(np.uint8)
        child = parent.copy()
        flip = rng.random(500) < 0.1
        child[flip] = 1 - child[flip]
        data = np.stack([parent, child], axis=1)
        assert family_bic(data, 1, (0,)) > family_bic(data, 1, ())

    def test_independent_parent_penalized(self):
        rng = np.random.default_rng(5)
        data = (rng.random((500, 2)) < 0.5).astype(np.uint8)
        assert family_bic(data, 1, (0,)) < family_bic(data, 1, ())

    def test_empty_data_defined(self):
        data = np.zeros((0, 2), dtype=np.uint8)
        assert math.isfinite(family_bic(data, 0, ()))


class TestBayesNet:
    def test_cycle_detection(self):
        net = BayesNet.empty(3)
        net.parents[1].add(0)  # 0 -> 1
        net.parents[2].add(1)  # 1 -> 2
        assert net.would_cycle(2, 0)  # 2 -> 0 closes the cycle
        assert not net.would_cycle(0, 2)

    def test_edges_listing(self):
        net = BayesNet.empty(3)
        net.parents[2].add(0)
        net.parents[2].add(1)
        assert net.edges() == [(0, 2), (1, 2)]


class TestHillClimb:
    def test_finds_linked_structure(self):
        data = genotype_matrix(n_sequences=400, length=8, seed=7)
        net, final_score = hill_climb(data, max_parents=2)
        assert len(net.edges()) > 0
        assert final_score > score(data, BayesNet.empty(8))

    def test_result_is_acyclic(self):
        data = genotype_matrix(n_sequences=200, length=10, seed=9)
        net, _ = hill_climb(data, max_parents=3)
        # Topological check: repeatedly remove sink-free nodes.
        remaining = set(range(net.n))
        parents = {v: set(net.parents[v]) & remaining for v in remaining}
        while remaining:
            roots = [v for v in remaining if not parents[v]]
            assert roots, "cycle detected in learned network"
            for root in roots:
                remaining.discard(root)
            parents = {v: set(net.parents[v]) & remaining for v in remaining}

    def test_respects_max_parents(self):
        data = genotype_matrix(n_sequences=300, length=8, seed=11)
        net, _ = hill_climb(data, max_parents=1)
        assert all(len(p) <= 1 for p in net.parents)

    def test_score_decomposability(self):
        """Total score equals the sum of family scores."""
        data = genotype_matrix(n_sequences=200, length=6, seed=13)
        net, reported = hill_climb(data, max_parents=2)
        assert reported == pytest.approx(score(data, net))


class TestTracedKernel:
    def test_runs_and_traces_column_scans(self):
        recorder = TraceRecorder()
        net, _ = traced_snp_kernel(
            recorder, MemoryArena(), n_sequences=80, length=8
        )
        assert recorder.access_count > 1000
        assert isinstance(net, BayesNet)
