"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.mining import datasets


class TestGenotypeMatrix:
    def test_shape_and_dtype(self):
        data = datasets.genotype_matrix(100, 20, seed=1)
        assert data.shape == (100, 20)
        assert set(np.unique(data)) <= {0, 1}

    def test_linkage_creates_correlation(self):
        data = datasets.genotype_matrix(2000, 30, seed=2).astype(float)
        correlations = [
            abs(np.corrcoef(data[:, j], data[:, j + 1])[0, 1])
            for j in range(29)
            if data[:, j].std() > 0 and data[:, j + 1].std() > 0
        ]
        assert max(correlations) > 0.5  # some loci are linked

    def test_deterministic(self):
        a = datasets.genotype_matrix(50, 10, seed=3)
        b = datasets.genotype_matrix(50, 10, seed=3)
        assert np.array_equal(a, b)


class TestMicroArray:
    def test_shapes(self):
        data = datasets.micro_array(samples=30, genes=50, informative=5, seed=1)
        assert data.expression.shape == (30, 50)
        assert data.labels.shape == (30,)
        assert len(data.informative) == 5

    def test_labels_are_binary(self):
        data = datasets.micro_array(seed=2)
        assert set(np.unique(data.labels)) <= {-1, 1}

    def test_informative_genes_separate_classes(self):
        data = datasets.micro_array(samples=200, genes=50, informative=5, seed=3)
        gene = data.informative[0]
        positive = data.expression[data.labels == 1, gene].mean()
        negative = data.expression[data.labels == -1, gene].mean()
        assert positive - negative > 1.0


class TestRNASequences:
    def test_database_alphabet(self):
        database = datasets.rna_database(500, seed=1)
        assert set(np.unique(database)) <= {0, 1, 2, 3}

    def test_query_is_hairpin(self):
        query = datasets.rna_query(30, seed=2)
        half = len(query) // 2
        # Second half is the reverse complement of the first.
        assert np.array_equal(query[half:], (3 - query[:half])[::-1])

    def test_plant_homolog_mutates_but_preserves(self):
        database = datasets.rna_database(200, seed=3)
        query = datasets.rna_query(40, seed=4)
        planted = datasets.plant_homolog(database, query, 50, mutation_rate=0.1)
        window = planted[50:90]
        identity = (window == query).mean()
        assert 0.8 < identity <= 1.0
        # Rest of the database untouched.
        assert np.array_equal(planted[:50], database[:50])


class TestTransactions:
    def test_sizes_and_sorting(self):
        data = datasets.transactions(n_transactions=100, n_items=30, seed=1)
        assert len(data) == 100
        for transaction in data:
            assert transaction == sorted(transaction)
            assert len(set(transaction)) == len(transaction)

    def test_zipf_popularity(self):
        data = datasets.transactions(
            n_transactions=2000, n_items=100, zipf_alpha=1.3, seed=2
        )
        counts = np.zeros(100)
        for transaction in data:
            for item in transaction:
                counts[item] += 1
        assert counts.max() > 5 * np.median(counts[counts > 0])


class TestDNAPair:
    def test_divergence_controls_identity(self):
        close_a, close_b = datasets.dna_pair(length=400, divergence=0.05, seed=3)
        far_a, far_b = datasets.dna_pair(length=400, divergence=0.5, seed=3)
        close_identity = (close_a == close_b).mean()
        far_identity = (far_a == far_b).mean()
        assert close_identity > far_identity


class TestDocumentSet:
    def test_structure(self):
        documents = datasets.document_set(n_documents=5, sentences_per_document=4, seed=1)
        assert len(documents.sentences) == 20
        assert max(documents.document_of) == 4
        assert len(documents.query) == 6

    def test_topic_overlap_across_documents(self):
        documents = datasets.document_set(n_documents=6, seed=2)
        vocabularies = {}
        for sentence, document in zip(documents.sentences, documents.document_of):
            vocabularies.setdefault(document, set()).update(sentence)
        shared = set.intersection(*vocabularies.values())
        assert shared  # the common topic words


class TestSyntheticVideo:
    def test_shapes(self):
        video = datasets.synthetic_video(n_frames=20, height=24, width=32, seed=1)
        assert video.frames.shape == (20, 24, 32, 3)
        assert video.shot_boundaries[0] == 0
        assert len(video.view_types) == len(video.shot_boundaries)

    def test_boundaries_sorted_within_range(self):
        video = datasets.synthetic_video(n_frames=40, seed=2)
        assert video.shot_boundaries == sorted(video.shot_boundaries)
        assert all(0 <= b < 40 for b in video.shot_boundaries)

    def test_view_types_valid(self):
        video = datasets.synthetic_video(n_frames=40, seed=3)
        assert set(video.view_types) <= set(datasets.VIEW_TYPES)
