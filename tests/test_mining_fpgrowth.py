"""Tests for FP-growth (FIMI)."""

import pytest

from repro.mining.datasets import transactions
from repro.mining.fpgrowth import (
    FPTree,
    bruteforce_frequent_itemsets,
    first_scan,
    fp_growth,
    order_transaction,
)
from repro.trace.instrument import MemoryArena, TraceRecorder


class TestFirstScan:
    def test_counts_and_filters(self):
        data = [[1, 2], [1, 3], [1, 2]]
        assert first_scan(data, min_support=2) == {1: 3, 2: 2}

    def test_order_transaction(self):
        frequent = {1: 3, 2: 2, 3: 5}
        assert order_transaction([2, 1, 3, 9], frequent) == [3, 1, 2]

    def test_order_breaks_ties_by_item(self):
        frequent = {4: 2, 2: 2}
        assert order_transaction([4, 2], frequent) == [2, 4]


class TestFPTree:
    def test_shared_prefix_compression(self):
        tree = FPTree(min_support=1)
        tree.insert([1, 2, 3])
        tree.insert([1, 2, 4])
        assert tree.node_count == 4  # 1,2 shared; 3,4 distinct

    def test_header_chains_homonyms(self):
        tree = FPTree(min_support=1)
        tree.insert([1, 2])
        tree.insert([3, 2])
        node = tree.header[2]
        chain = []
        while node is not None:
            chain.append(node.item)
            node = node.next_homonym
        assert chain == [2, 2]

    def test_supports_accumulate(self):
        tree = FPTree(min_support=1)
        tree.insert([1, 2])
        tree.insert([1])
        assert tree.supports[1] == 2
        assert tree.supports[2] == 1


class TestFPGrowthCorrectness:
    @pytest.mark.parametrize("seed,min_support", [(3, 20), (5, 12), (8, 30)])
    def test_matches_bruteforce(self, seed, min_support):
        data = transactions(n_transactions=150, n_items=20, avg_length=5, seed=seed)
        mined = fp_growth(data, min_support)
        expected = bruteforce_frequent_itemsets(data, min_support, max_size=4)
        mined_small = {k: v for k, v in mined.items() if len(k) <= 4}
        assert mined_small == expected

    def test_empty_transactions(self):
        assert fp_growth([], min_support=1) == {}

    def test_min_support_monotonicity(self):
        data = transactions(n_transactions=100, n_items=15, seed=7)
        low = fp_growth(data, min_support=10)
        high = fp_growth(data, min_support=30)
        assert set(high) <= set(low)

    def test_apriori_property(self):
        """Every subset of a frequent itemset is frequent with >= support."""
        data = transactions(n_transactions=200, n_items=15, seed=11)
        mined = fp_growth(data, min_support=15)
        for itemset, support in mined.items():
            if len(itemset) > 1:
                for drop in range(len(itemset)):
                    subset = itemset[:drop] + itemset[drop + 1 :]
                    assert subset in mined
                    assert mined[subset] >= support


class TestInstrumentedFPGrowth:
    def test_emits_tree_traffic(self):
        recorder = TraceRecorder()
        arena = MemoryArena()
        data = transactions(n_transactions=80, n_items=15, seed=13)
        result = fp_growth(data, min_support=8, recorder=recorder, arena=arena)
        assert result  # mined something
        trace = recorder.trace()
        assert len(trace) > 1000  # tree walks recorded
        assert trace.write_count() > 0  # node updates
        assert trace.read_count() > 0  # traversals

    def test_instrumentation_does_not_change_results(self):
        data = transactions(n_transactions=80, n_items=15, seed=17)
        plain = fp_growth(data, min_support=8)
        traced = fp_growth(
            data, min_support=8, recorder=TraceRecorder(), arena=MemoryArena()
        )
        assert plain == traced
