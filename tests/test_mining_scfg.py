"""Tests for SCFG decoding and RSEARCH scanning."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mining.datasets import plant_homolog, rna_database, rna_query
from repro.mining.scfg import (
    PairingSCFG,
    SCFG,
    cyk_inside,
    null_model_logp,
    rna_hairpin_grammar,
    rsearch_scan,
    traced_rsearch_kernel,
    window_bitscore,
)
from repro.trace.instrument import MemoryArena, TraceRecorder


class TestCNFGrammar:
    def test_terminal_shape_validated(self):
        with pytest.raises(ConfigurationError):
            SCFG(n_nonterminals=2, binary_rules=(), terminal_logp=np.zeros((3, 4)))

    def test_cyk_single_symbol(self):
        grammar = rna_hairpin_grammar()
        sequence = np.array([0], dtype=np.uint8)
        assert cyk_inside(grammar, sequence) == pytest.approx(
            grammar.terminal_logp[0, 0]
        )

    def test_cyk_empty(self):
        assert cyk_inside(rna_hairpin_grammar(), np.array([], dtype=np.uint8)) < -1e17

    def test_cyk_is_best_derivation(self):
        """Brute-force max derivation over all split/rule choices (n=3)."""
        grammar = rna_hairpin_grammar()
        sequence = np.array([0, 2, 1], dtype=np.uint8)

        def best(symbol, i, j):
            if i == j:
                return grammar.terminal_logp[symbol, sequence[i]]
            candidates = []
            for a, b, c, log_p in grammar.binary_rules:
                if a != symbol:
                    continue
                for split in range(i, j):
                    candidates.append(
                        log_p + best(b, i, split) + best(c, split + 1, j)
                    )
            return max(candidates) if candidates else -1e18

        assert cyk_inside(grammar, sequence) == pytest.approx(best(0, 0, 2))

    def test_longer_sequences_score_lower(self):
        grammar = rna_hairpin_grammar()
        short = cyk_inside(grammar, np.array([0, 3], dtype=np.uint8))
        long = cyk_inside(grammar, np.array([0, 3, 0, 3, 0, 3], dtype=np.uint8))
        assert long < short  # probabilities multiply


class TestPairingSCFG:
    def test_perfect_hairpin_scores_all_pairs(self):
        grammar = PairingSCFG(pair_bonus=2.0, unpaired_score=-0.3)
        # A A U U: nested pairs (A-U, A-U).
        hairpin = np.array([0, 0, 3, 3], dtype=np.uint8)
        assert grammar.cyk_score(hairpin) == pytest.approx(4.0)

    def test_unpairable_sequence(self):
        grammar = PairingSCFG()
        # All A's: A-A is not complementary.
        poly_a = np.array([0, 0, 0, 0], dtype=np.uint8)
        # Best is to leave everything unpaired (mismatch pairs are worse).
        assert grammar.cyk_score(poly_a) == pytest.approx(4 * -0.3)

    def test_bifurcation_finds_two_stems(self):
        grammar = PairingSCFG()
        # (AU)(CG) side by side — needs the S→SS rule.
        two_stems = np.array([0, 3, 1, 2], dtype=np.uint8)
        assert grammar.cyk_score(two_stems) == pytest.approx(4.0)

    def test_query_hairpin_scores_maximally(self):
        grammar = PairingSCFG()
        query = rna_query(20, seed=3)
        score = grammar.cyk_score(query)
        assert score == pytest.approx(10 * grammar.pair_bonus)


class TestRSearchScan:
    def test_finds_planted_homolog(self):
        grammar = PairingSCFG()
        database = rna_database(240, seed=2)
        query = rna_query(24, seed=4)
        planted = plant_homolog(database, query, position=96)
        scores = rsearch_scan(grammar, planted, window=24, step=4, query=query)
        best_position = max(scores, key=lambda s: s[1])[0]
        assert abs(best_position - 96) <= 4

    def test_scan_covers_database(self):
        grammar = PairingSCFG()
        database = rna_database(100, seed=6)
        scores = rsearch_scan(grammar, database, window=20, step=10)
        assert [s[0] for s in scores] == list(range(0, 81, 10))

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            rsearch_scan(PairingSCFG(), rna_database(50), window=0)

    def test_cnf_bitscore_normalization(self):
        grammar = rna_hairpin_grammar()
        segment = rna_database(16, seed=8)
        bits = window_bitscore(grammar, segment)
        raw = cyk_inside(grammar, segment)
        assert bits == pytest.approx((raw - null_model_logp(segment)) / np.log(2.0))


class TestTracedKernel:
    def test_traces_database_stream_and_chart_reuse(self):
        recorder = TraceRecorder()
        scores = traced_rsearch_kernel(
            recorder, MemoryArena(), database_length=200, window=16, step=16
        )
        assert len(scores) == 12
        assert recorder.access_count > 1000
