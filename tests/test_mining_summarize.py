"""Tests for multi-document summarization (MDS)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mining.datasets import document_set
from repro.mining.summarize import (
    mmr_select,
    query_bias,
    rank_sentences,
    similarity_matrix,
    summarize,
    term_vectors,
    traced_mds_kernel,
)
from repro.trace.instrument import MemoryArena, TraceRecorder


class TestVectorsAndSimilarity:
    def test_term_vectors_normalized(self):
        vectors = term_vectors([[1, 1, 2], [3]], vocabulary_size=5)
        norms = np.linalg.norm(vectors, axis=1)
        assert norms == pytest.approx([1.0, 1.0])

    def test_empty_sentence_safe(self):
        vectors = term_vectors([[]], vocabulary_size=3)
        assert not np.isnan(vectors).any()

    def test_similarity_diagonal_zeroed(self):
        vectors = term_vectors([[1], [1]], vocabulary_size=3)
        sims = similarity_matrix(vectors)
        assert sims[0, 0] == 0.0
        assert sims[0, 1] == pytest.approx(1.0)

    def test_identical_sentences_max_similarity(self):
        vectors = term_vectors([[1, 2], [1, 2], [3, 4]], vocabulary_size=6)
        sims = similarity_matrix(vectors)
        assert sims[0, 1] == pytest.approx(1.0)
        assert sims[0, 2] == pytest.approx(0.0)


class TestRanking:
    def test_ranks_sum_to_one(self):
        documents = document_set(n_documents=4, sentences_per_document=4, seed=3)
        vectors = term_vectors(documents.sentences, documents.vocabulary_size)
        sims = similarity_matrix(vectors)
        bias = query_bias(vectors, documents.query, documents.vocabulary_size)
        ranks = rank_sentences(sims, bias)
        assert ranks.sum() == pytest.approx(1.0, abs=0.01)

    def test_query_bias_prefers_query_sentences(self):
        # Sentence 0 contains the query terms; sentence 1 does not.
        sentences = [[1, 2, 3], [7, 8, 9], [1, 7]]
        vectors = term_vectors(sentences, vocabulary_size=10)
        bias = query_bias(vectors, [1, 2], vocabulary_size=10)
        assert bias[0] > bias[1]

    def test_rejects_bad_damping(self):
        with pytest.raises(ConfigurationError):
            rank_sentences(np.zeros((2, 2)), np.array([0.5, 0.5]), damping=1.5)


class TestMMR:
    def test_penalizes_redundancy(self):
        ranks = np.array([0.5, 0.49, 0.01])
        sims = np.zeros((3, 3))
        sims[0, 1] = sims[1, 0] = 0.99  # 0 and 1 are near-duplicates
        selected = mmr_select(ranks, sims, k=2, lambda_relevance=0.5)
        assert selected[0] == 0
        assert selected[1] == 2  # 1 is redundant with 0

    def test_pure_relevance_when_lambda_one(self):
        ranks = np.array([0.2, 0.5, 0.3])
        sims = np.ones((3, 3))
        assert mmr_select(ranks, sims, k=3, lambda_relevance=1.0) == [1, 2, 0]

    def test_k_larger_than_corpus(self):
        assert len(mmr_select(np.array([0.5, 0.5]), np.zeros((2, 2)), k=10)) == 2

    def test_rejects_bad_lambda(self):
        with pytest.raises(ConfigurationError):
            mmr_select(np.array([1.0]), np.zeros((1, 1)), 1, lambda_relevance=2.0)


class TestEndToEnd:
    def test_summary_spans_documents(self):
        documents = document_set(n_documents=8, sentences_per_document=6, seed=5)
        selected = summarize(documents, k=5)
        assert len(selected) == 5
        covered = {documents.document_of[s] for s in selected}
        assert len(covered) >= 3  # MMR spreads across documents

    def test_deterministic(self):
        documents = document_set(seed=7)
        assert summarize(documents, k=4) == summarize(documents, k=4)


class TestSummaryQuality:
    def test_mmr_beats_pure_relevance_on_redundancy(self):
        """The workload's raison d'etre: MMR trades a little relevance
        for materially less redundancy."""
        from repro.mining.summarize import summary_quality

        documents = document_set(n_documents=10, sentences_per_document=8, seed=21)
        vectors = term_vectors(documents.sentences, documents.vocabulary_size)
        sims = similarity_matrix(vectors)
        bias = query_bias(vectors, documents.query, documents.vocabulary_size)
        ranks = rank_sentences(sims, bias)
        mmr = mmr_select(ranks, sims, k=5, lambda_relevance=0.5)
        greedy = list(np.argsort(ranks)[::-1][:5])
        _, mmr_redundancy = summary_quality(documents, mmr)
        _, greedy_redundancy = summary_quality(documents, [int(g) for g in greedy])
        assert mmr_redundancy <= greedy_redundancy + 1e-9

    def test_coverage_of_query_terms(self):
        from repro.mining.summarize import summarize, summary_quality

        documents = document_set(n_documents=10, sentences_per_document=8, seed=23)
        selected = summarize(documents, k=6)
        coverage, _ = summary_quality(documents, selected)
        assert coverage > 0.5

    def test_empty_selection(self):
        from repro.mining.summarize import summary_quality

        documents = document_set(seed=1)
        assert summary_quality(documents, []) == (0.0, 0.0)


class TestTracedKernel:
    def test_traces_matrix_streaming(self):
        recorder = TraceRecorder()
        result = traced_mds_kernel(
            recorder, MemoryArena(), n_documents=6, sentences_per_document=5,
            k=3, iterations=3,
        )
        assert len(result.selected) == 3
        # Power iteration streams the n x n similarity matrix each round.
        assert recorder.access_count > result.sentences**2 * 3
