"""Tests for SVM training and RFE."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mining.datasets import micro_array
from repro.mining.svm import rfe, train_svm, traced_rfe_kernel
from repro.trace.instrument import MemoryArena, TraceRecorder


class TestTrainSVM:
    def test_separable_data_classified(self):
        data = micro_array(samples=50, genes=40, informative=10, seed=5)
        model = train_svm(data.expression, data.labels)
        accuracy = (model.predict(data.expression) == data.labels).mean()
        assert accuracy > 0.95

    def test_weights_concentrate_on_informative_genes(self):
        data = micro_array(samples=60, genes=60, informative=6, seed=9)
        model = train_svm(data.expression, data.labels)
        importance = model.weights**2
        top = set(np.argsort(importance)[-6:])
        assert len(top & set(data.informative.tolist())) >= 4

    def test_alphas_bounded_by_c(self):
        data = micro_array(samples=40, genes=30, seed=3)
        model = train_svm(data.expression, data.labels, c=0.5)
        assert model.alphas.min() >= 0
        assert model.alphas.max() <= 0.5 + 1e-9

    def test_rejects_bad_labels(self):
        with pytest.raises(ConfigurationError):
            train_svm(np.zeros((4, 2)), np.array([0, 1, 2, 1]))

    def test_rejects_1d_input(self):
        with pytest.raises(ConfigurationError):
            train_svm(np.zeros(4), np.array([1, -1, 1, -1]))


class TestRFE:
    def test_keeps_requested_count(self):
        data = micro_array(samples=30, genes=64, seed=7)
        selected = rfe(data.expression, data.labels, keep=8)
        assert len(selected) == 8

    def test_selects_informative_genes(self):
        data = micro_array(samples=60, genes=64, informative=8, seed=11)
        selected = rfe(data.expression, data.labels, keep=8)
        hits = len(set(selected) & set(data.informative.tolist()))
        assert hits >= 5  # most survivors carry signal

    def test_selected_indices_valid(self):
        data = micro_array(samples=20, genes=32, seed=13)
        selected = rfe(data.expression, data.labels, keep=4)
        assert all(0 <= g < 32 for g in selected)
        assert len(set(selected)) == len(selected)

    def test_rejects_bad_keep(self):
        data = micro_array(samples=10, genes=8, seed=1)
        with pytest.raises(ConfigurationError):
            rfe(data.expression, data.labels, keep=0)


class TestTracedKernel:
    def test_runs_and_traces(self):
        recorder = TraceRecorder()
        arena = MemoryArena()
        selected = traced_rfe_kernel(recorder, arena, samples=12, genes=32, keep=4)
        assert len(selected) == 4
        assert recorder.access_count > 500
        assert recorder.instruction_count > recorder.access_count

    def test_trace_shows_row_scans(self):
        from repro.trace.stats import dominant_stride_fraction

        recorder = TraceRecorder()
        traced_rfe_kernel(recorder, MemoryArena(), samples=10, genes=32, keep=8)
        # Matrix rows are read as contiguous ranges: strong stride signal.
        assert dominant_stride_fraction(recorder.trace()) > 0.5
