"""Tests for video mining (SHOT and VIEWTYPE)."""

import collections

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mining.datasets import synthetic_video
from repro.mining.video import (
    classify_video_views,
    classify_view,
    detect_shots,
    histogram_difference,
    pixel_difference,
    rgb_histogram_48,
    rgb_to_hsv,
    segment_playfield,
    train_dominant_color,
    traced_shot_kernel,
    traced_viewtype_kernel,
    view_features,
    ViewFeatures,
)
from repro.trace.instrument import MemoryArena, TraceRecorder


class TestHistogram:
    def test_48_bins_normalized(self):
        frame = np.zeros((8, 8, 3), dtype=np.uint8)
        histogram = rgb_histogram_48(frame)
        assert histogram.shape == (48,)
        assert histogram[:16].sum() == pytest.approx(1.0)  # per-channel mass

    def test_uniform_frame_single_bin_per_channel(self):
        frame = np.full((8, 8, 3), 200, dtype=np.uint8)
        histogram = rgb_histogram_48(frame)
        assert np.count_nonzero(histogram) == 3

    def test_rejects_grayscale(self):
        with pytest.raises(ConfigurationError):
            rgb_histogram_48(np.zeros((8, 8), dtype=np.uint8))

    def test_histogram_difference_bounds(self):
        black = rgb_histogram_48(np.zeros((8, 8, 3), dtype=np.uint8))
        white = rgb_histogram_48(np.full((8, 8, 3), 255, dtype=np.uint8))
        assert histogram_difference(black, black) == 0.0
        assert histogram_difference(black, white) == pytest.approx(6.0)

    def test_pixel_difference(self):
        a = np.zeros((4, 4, 3), dtype=np.uint8)
        b = np.full((4, 4, 3), 255, dtype=np.uint8)
        assert pixel_difference(a, a) == 0.0
        assert pixel_difference(a, b) == pytest.approx(1.0)


class TestShotDetection:
    @pytest.mark.parametrize("seed", [8, 21, 34])
    def test_recovers_ground_truth(self, seed):
        video = synthetic_video(n_frames=50, seed=seed)
        detected = detect_shots(video.frames)
        truth = set(video.shot_boundaries)
        found = set(detected)
        recall = len(truth & found) / len(truth)
        assert recall >= 0.8
        false_positives = found - truth
        assert len(false_positives) <= 1

    def test_static_video_no_boundaries(self):
        frame = np.full((16, 16, 3), 128, dtype=np.uint8)
        frames = np.stack([frame] * 10)
        assert detect_shots(frames) == [0]


class TestHSV:
    def test_primary_hues(self):
        red = np.array([[[255, 0, 0]]], dtype=np.uint8)
        green = np.array([[[0, 255, 0]]], dtype=np.uint8)
        blue = np.array([[[0, 0, 255]]], dtype=np.uint8)
        assert rgb_to_hsv(red)[0, 0, 0] == pytest.approx(0.0)
        assert rgb_to_hsv(green)[0, 0, 0] == pytest.approx(120.0)
        assert rgb_to_hsv(blue)[0, 0, 0] == pytest.approx(240.0)

    def test_grey_has_no_saturation(self):
        grey = np.full((2, 2, 3), 100, dtype=np.uint8)
        hsv = rgb_to_hsv(grey)
        assert hsv[..., 1].max() == 0.0

    def test_value_channel(self):
        bright = np.array([[[255, 255, 255]]], dtype=np.uint8)
        assert rgb_to_hsv(bright)[0, 0, 2] == pytest.approx(1.0)


class TestDominantColor:
    def test_trained_range_segments_playfield(self):
        video = synthetic_video(n_frames=24, seed=8)
        hue_range = train_dominant_color(video.frames[:12])
        # The playfield color is green-ish: hue in the trained range.
        frame = video.frames[0]
        mask = segment_playfield(frame, hue_range)
        assert mask.shape == frame.shape[:2]


class TestViewClassification:
    def test_thresholds(self):
        assert classify_view(ViewFeatures(0.0, 0.0)) == "outofview"
        assert classify_view(ViewFeatures(0.8, 0.01)) == "global"
        assert classify_view(ViewFeatures(0.4, 0.05)) == "medium"
        assert classify_view(ViewFeatures(0.15, 0.2)) == "closeup"

    @pytest.mark.parametrize("seed", [8, 13])
    def test_per_shot_majority_matches_truth(self, seed):
        video = synthetic_video(n_frames=60, seed=seed)
        views = classify_video_views(video.frames)
        bounds = video.shot_boundaries + [len(video.frames)]
        correct = 0
        for i, truth in enumerate(video.view_types):
            window = views[bounds[i] : bounds[i + 1]]
            majority = collections.Counter(window).most_common(1)[0][0]
            correct += majority == truth
        assert correct / len(video.view_types) >= 0.7


class TestTracedKernels:
    def test_shot_kernel_streams_frames(self):
        from repro.trace.stats import dominant_stride_fraction

        recorder = TraceRecorder()
        boundaries = traced_shot_kernel(
            recorder, MemoryArena(), n_frames=12, height=16, width=20
        )
        assert boundaries[0] == 0
        trace = recorder.trace()
        assert len(trace) > 10_000
        assert dominant_stride_fraction(trace) > 0.9  # pure streaming

    def test_viewtype_kernel_two_passes(self):
        recorder = TraceRecorder()
        views = traced_viewtype_kernel(
            recorder, MemoryArena(), n_frames=6, height=16, width=20
        )
        assert len(views) == 6
        # Two full passes per frame over h*w*3 bytes.
        assert recorder.access_count == 6 * 2 * 16 * 20 * 3
