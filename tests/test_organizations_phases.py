"""Tests for the shared/private LLC study and phase detection."""

import pytest

from repro.cache.organizations import (
    compare_organizations,
    organization_study,
    private_llc_mpki,
    shared_llc_mpki,
)
from repro.cache.sampling import WindowSample
from repro.core.phases import detect_phases, phase_summary, representative_window
from repro.errors import ConfigurationError
from repro.units import MB
from repro.workloads.profiles import memory_model


class TestOrganizations:
    def test_single_core_organizations_coincide(self):
        """With one core there is no sharing: both organizations equal."""
        model = memory_model("FIMI")
        shared = shared_llc_mpki(model, 8 * MB, 1)
        private = private_llc_mpki(model, 8 * MB, 1)
        assert shared == pytest.approx(private, rel=0.02)

    def test_shared_wins_for_shared_heavy_workloads(self):
        """Category A: replication wastes nearly all private capacity."""
        for name in ("SNP", "MDS"):
            comparison = compare_organizations(name, 32 * MB, 16)
            assert not comparison.private_wins, name

    def test_private_wins_for_private_heavy_workloads(self):
        """Category C at matched total capacity: an interference-free
        slice beats the shared pool once slices still hold the working
        set."""
        comparison = compare_organizations("SHOT", 64 * MB, 8)
        # 8MB/core private slice holds SHOT's ~3.4MB/thread set without
        # any cross-thread dilation.
        assert comparison.private_mpki <= comparison.shared_mpki + 0.01

    def test_study_covers_everyone(self):
        study = organization_study(32 * MB, 16)
        assert len(study) == 8
        assert all(c.winner in ("shared", "private") for c in study)

    def test_rejects_bad_cores(self):
        with pytest.raises(ConfigurationError):
            private_llc_mpki(memory_model("FIMI"), 8 * MB, 0)


def make_samples(mpkis, instructions=1000):
    return [
        WindowSample(index=i, cycles=1000, instructions=instructions,
                     accesses=500, misses=int(m * instructions / 1000))
        for i, m in enumerate(mpkis)
    ]


class TestPhaseDetection:
    def test_single_stable_phase(self):
        samples = make_samples([10, 10, 11, 10, 9, 10])
        phases = detect_phases(samples)
        assert len(phases) == 1
        assert phases[0].windows == 6
        assert phases[0].mean_mpki == pytest.approx(10.0, rel=0.1)

    def test_two_phases_detected(self):
        samples = make_samples([10] * 6 + [40] * 6)
        phases = detect_phases(samples)
        assert len(phases) == 2
        assert phases[0].end_window == 6
        assert phases[1].mean_mpki == pytest.approx(40.0, rel=0.1)

    def test_single_spike_absorbed(self):
        samples = make_samples([10, 10, 45, 10, 10, 10])
        phases = detect_phases(samples, confirm=2)
        assert len(phases) == 1

    def test_three_stage_run(self):
        """The FIMI shape: scan, build, mine at different intensities."""
        samples = make_samples([5] * 5 + [25] * 5 + [12] * 5)
        phases = detect_phases(samples)
        assert len(phases) == 3
        means = [p.mean_mpki for p in phases]
        assert means[1] == max(means)

    def test_empty(self):
        assert detect_phases([]) == []

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            detect_phases(make_samples([1.0]), threshold=0)

    def test_representative_window_minimizes_distance(self):
        samples = make_samples([10, 14, 10, 6, 10])
        phases = detect_phases(samples, threshold=0.9)
        representative = representative_window(samples, phases[0])
        assert samples[representative].mpki == pytest.approx(
            phases[0].mean_mpki, rel=0.15
        )

    def test_phase_summary_pairs(self):
        samples = make_samples([10] * 4 + [30] * 4)
        summary = phase_summary(samples)
        assert len(summary) == 2
        for phase, representative in summary:
            assert phase.start_window <= representative < phase.end_window

    def test_instructions_accounted(self):
        samples = make_samples([10] * 4 + [30] * 4)
        phases = detect_phases(samples)
        assert sum(p.instructions for p in phases) == 8 * 1000


class TestBandwidthStudy:
    def test_generate_covers_cmps_and_workloads(self):
        from repro.harness import bandwidth_study

        rows = bandwidth_study.generate()
        assert len(rows) == 3 * 8
        assert all(r.demand_gb_per_s >= 0 for r in rows)

    def test_demand_grows_with_cores(self):
        from repro.harness import bandwidth_study
        from repro.core.experiment import LCMP, SCMP

        scmp = {r.workload: r for r in bandwidth_study.generate(cmps=(SCMP,))}
        lcmp = {r.workload: r for r in bandwidth_study.generate(cmps=(LCMP,))}
        for name in ("SHOT", "VIEWTYPE"):
            assert lcmp[name].demand_gb_per_s > scmp[name].demand_gb_per_s

    def test_main_prints(self, capsys):
        from repro.harness import bandwidth_study

        bandwidth_study.main()
        output = capsys.readouterr().out
        assert "bandwidth demand" in output
        assert "GB/s" in output


class TestCosimCLI:
    def test_kernel_run(self, capsys):
        from repro.harness.cli import main

        assert main(["--workload", "PLSA", "--cores", "2", "--cache", "1MB"]) == 0
        output = capsys.readouterr().out
        assert "LLC MPKI" in output

    def test_synthetic_run_with_phases(self, capsys):
        from repro.harness.cli import main

        code = main(
            [
                "--workload", "FIMI", "--cores", "2", "--cache", "1MB",
                "--source", "synthetic", "--accesses", "20000",
                "--scale", "1/64", "--phases",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Phase analysis" in output

    def test_rejects_unknown_workload(self):
        from repro.harness.cli import main

        with pytest.raises(SystemExit):
            main(["--workload", "NOPE"])
