"""Tests for the performance models (CPI stack, bandwidth, Figure 8)."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.bandwidth import BusModel, bandwidth_headroom
from repro.perf.cpi import cpi_stack, paper_ipc, predicted_ipc
from repro.perf.prefetch_study import (
    component_prefetch_fraction,
    contention_headroom,
    coverage_at,
    prefetch_gain,
    prefetch_study,
)
from repro.workloads.profiles import (
    PAPER_TABLE2,
    PREFETCH_PARALLEL_WINNERS,
    PREFETCH_SERIAL_WINNERS,
    WORKLOAD_NAMES,
    memory_model,
)

ALL = list(WORKLOAD_NAMES)


class TestCpiStack:
    @pytest.mark.parametrize("name", ALL)
    def test_model_ipc_matches_paper(self, name):
        model = memory_model(name)
        ipc = predicted_ipc(name, model.dl1_mpki(), model.dl2_mpki())
        assert ipc == pytest.approx(paper_ipc(name), rel=0.10)

    def test_ipc_ordering(self):
        """MDS slowest, PLSA fastest (Table 2)."""
        ipcs = {
            name: predicted_ipc(
                name, memory_model(name).dl1_mpki(), memory_model(name).dl2_mpki()
            )
            for name in ALL
        }
        assert min(ipcs, key=ipcs.get) == "MDS"
        assert max(ipcs, key=ipcs.get) == "PLSA"

    def test_stack_decomposition(self):
        stack = cpi_stack("SNP", dl1_mpki=12.0, dl2_mpki=7.77)
        assert stack.total == pytest.approx(
            stack.base + stack.exposure * (stack.l2_stall + stack.memory_stall)
        )
        assert 0 < stack.memory_bound_fraction < 1

    def test_more_misses_lower_ipc(self):
        low = predicted_ipc("FIMI", 10.0, 2.0)
        high = predicted_ipc("FIMI", 30.0, 10.0)
        assert high < low


class TestBusModel:
    def test_demand_bandwidth_scales_with_threads(self):
        bus = BusModel()
        one = bus.demand_bandwidth(mpki=4.0, cpi=1.0, threads=1)
        sixteen = bus.demand_bandwidth(mpki=4.0, cpi=1.0, threads=16)
        assert sixteen == pytest.approx(16 * one)

    def test_utilization_capped(self):
        bus = BusModel(peak_bytes_per_second=1e6)
        assert bus.utilization(mpki=100.0, cpi=1.0, threads=32) == 1.0

    def test_headroom_complement(self):
        bus = BusModel()
        utilization = bus.utilization(5.0, 2.0, 4)
        assert bandwidth_headroom(bus, 5.0, 2.0, 4) == pytest.approx(1 - utilization)

    def test_rejects_bad_cpi(self):
        with pytest.raises(ConfigurationError):
            BusModel().demand_bandwidth(1.0, 0.0, 1)


class TestPrefetchStudy:
    def test_all_workloads_gain(self):
        """Figure 8: 'the performance of all applications is considerably
        improved' — every gain is positive in both modes."""
        for name, (serial, parallel) in prefetch_study().items():
            assert serial.speedup_percent > 0, name
            assert parallel.speedup_percent > 0, name

    def test_maximum_gain_near_paper(self):
        """Paper: 'up to 33%' — the best gain lands in the 25-45% band."""
        best = max(
            max(s.speedup_percent, p.speedup_percent)
            for s, p in prefetch_study().values()
        )
        assert 25.0 < best < 45.0

    @pytest.mark.parametrize("name", list(PREFETCH_PARALLEL_WINNERS))
    def test_parallel_winners(self, name):
        serial, parallel = prefetch_study()[name]
        assert parallel.speedup_percent > serial.speedup_percent

    @pytest.mark.parametrize("name", list(PREFETCH_SERIAL_WINNERS))
    def test_bandwidth_bound_serial_winners(self, name):
        """SNP and MDS: high miss rates starve parallel prefetching."""
        serial, parallel = prefetch_study()[name]
        assert serial.speedup_percent > parallel.speedup_percent

    def test_headroom_shrinks_with_contention(self):
        assert contention_headroom(18.95, 16) < contention_headroom(18.95, 1)
        assert contention_headroom(0.2, 16) > 0.9

    def test_coverage_reflects_component_mix(self):
        # SNP's misses are mostly streams; FIMI's mostly pointer chases.
        snp = coverage_at(memory_model("SNP"), 512 * 1024)
        fimi = coverage_at(memory_model("FIMI"), 512 * 1024)
        assert snp > 0.8
        assert fimi < 0.7

    def test_prefetch_fraction_rules(self):
        assert component_prefetch_fraction("anything", "cyclic") == 1.0
        assert component_prefetch_fraction("anything", "stream") == 1.0
        assert component_prefetch_fraction("unknown-name", "pointer") == 0.0
        assert 0 < component_prefetch_fraction("fimi-tree", "pointer") < 1

    def test_gain_structure(self):
        gain = prefetch_gain("SHOT", threads=16)
        assert gain.cpi_on < gain.cpi_off
        assert 0 < gain.coverage_memory <= 1
        assert 0 < gain.headroom <= 1
