"""Property-based tests (hypothesis) for the core invariants.

These cover the identities everything else rests on:

* stack distance >= capacity  <=>  fully-associative LRU miss;
* LRU inclusion (bigger caches never miss more);
* the banked Dragonhead equals a monolithic cache of the same geometry;
* message codec round-trips;
* stream combinators conserve transactions;
* MESI single-writer invariants under arbitrary traffic;
* reuse-profile algebra (composition, scaling, dilation).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheConfig, FullyAssociativeLRU, SetAssociativeCache
from repro.cache.coherence import CoherentCacheSystem
from repro.protocol import Message, MessageCodec, MessageKind
from repro.reuse.histogram import ReuseProfile
from repro.reuse.olken import miss_count, stack_distances
from repro.trace.record import AccessKind, TraceChunk
from repro.trace.stream import materialize, round_robin_interleave
from repro.units import KB

# Strategy: short line-address traces over a small footprint, so
# capacities in the interesting range are exercised quickly.
addresses_strategy = st.lists(
    st.integers(min_value=0, max_value=63).map(lambda line: line * 64),
    min_size=1,
    max_size=300,
)


class TestStackDistanceLRUEquivalence:
    @given(addresses=addresses_strategy, capacity=st.integers(1, 80))
    @settings(max_examples=60, deadline=None)
    def test_identity(self, addresses, capacity):
        chunk = TraceChunk(addresses)
        distances = stack_distances(chunk, 64)
        cache = FullyAssociativeLRU(capacity_lines=capacity)
        cache.access_chunk(chunk)
        assert miss_count(distances, capacity) == cache.stats.misses


class TestLRUInclusion:
    @given(addresses=addresses_strategy)
    @settings(max_examples=40, deadline=None)
    def test_monotone_misses(self, addresses):
        chunk = TraceChunk(addresses)
        previous = None
        for capacity in (2, 4, 8, 16, 32, 64):
            cache = FullyAssociativeLRU(capacity_lines=capacity)
            cache.access_chunk(chunk)
            if previous is not None:
                assert cache.stats.misses <= previous
            previous = cache.stats.misses

    @given(addresses=addresses_strategy)
    @settings(max_examples=30, deadline=None)
    def test_distinct_lines_lower_bound(self, addresses):
        """Cold misses alone equal the number of distinct lines."""
        chunk = TraceChunk(addresses)
        distinct = len(np.unique(chunk.lines(64)))
        cache = FullyAssociativeLRU(capacity_lines=1024)
        cache.access_chunk(chunk)
        assert cache.stats.misses == distinct


class TestBankedEmulatorEquivalence:
    @given(
        addresses=st.lists(
            st.integers(0, (1 << 22) - 1).map(lambda a: a * 64), min_size=1, max_size=400
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_banked_equals_reference(self, addresses):
        from repro.cache.emulator import DragonheadConfig, DragonheadEmulator
        from repro.core.fsb import FSBTransaction
        from repro.units import MB

        emulator = DragonheadEmulator(DragonheadConfig(cache_size=1 * MB, associativity=4))
        for address in MessageCodec.encode(Message(MessageKind.START_EMULATION)):
            emulator.snoop(FSBTransaction(address=address, kind=AccessKind.WRITE))
        chunk = TraceChunk(addresses)
        emulator.snoop_chunk(chunk)
        banks = [
            SetAssociativeCache(CacheConfig(size=256 * KB, line_size=64, associativity=4))
            for _ in range(4)
        ]
        for line in chunk.lines(64):
            line = int(line)
            banks[line % 4].access_line(line >> 2)
        assert emulator.stats.misses == sum(b.stats.misses for b in banks)


class TestCodecRoundTrip:
    @given(
        kind=st.sampled_from(
            [MessageKind.CORE_ID, MessageKind.INSTRUCTIONS_RETIRED, MessageKind.CYCLES_COMPLETED]
        ),
        payload=st.integers(min_value=0, max_value=(1 << 60) - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip(self, kind, payload):
        if kind is MessageKind.CORE_ID and payload >= (1 << 40):
            payload %= 1 << 40  # CORE_ID has no wide form
        codec = MessageCodec()
        message = Message(kind, payload)
        decoded = [
            m
            for m in (codec.decode(a) for a in MessageCodec.encode(message))
            if m is not None
        ]
        assert decoded == [message]

    @given(payload=st.integers(0, (1 << 60) - 1))
    @settings(max_examples=50, deadline=None)
    def test_encoded_addresses_are_messages(self, payload):
        for address in MessageCodec.encode(
            Message(MessageKind.INSTRUCTIONS_RETIRED, payload)
        ):
            assert MessageCodec.is_message(address)


class TestInterleaveConservation:
    @given(
        lengths=st.lists(st.integers(0, 50), min_size=1, max_size=5),
        quantum=st.integers(1, 16),
    )
    @settings(max_examples=50, deadline=None)
    def test_every_transaction_delivered_once(self, lengths, quantum):
        streams = [
            [TraceChunk([t * 1000 + i for i in range(n)])] for t, n in enumerate(lengths)
        ]
        merged = materialize(round_robin_interleave(streams, quantum=quantum))
        assert len(merged) == sum(lengths)
        for t, n in enumerate(lengths):
            from_thread = sorted(
                int(a) for a in merged.addresses[merged.cores == t]
            )
            assert from_thread == [t * 1000 + i for i in range(n)]


class TestMESIInvariants:
    @given(
        operations=st.lists(
            st.tuples(
                st.integers(0, 3),  # core
                st.integers(0, 15),  # line
                st.booleans(),  # is_write
            ),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_single_writer(self, operations):
        system = CoherentCacheSystem(
            private_config=CacheConfig(size=1 * KB, line_size=64, associativity=4),
            cores=4,
        )
        for core, line, is_write in operations:
            system.access(
                core, line * 64, AccessKind.WRITE if is_write else AccessKind.READ
            )
        system.check_invariants()

    @given(
        operations=st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 7), st.booleans()), max_size=100
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_write_after_any_history_hits_or_misses_consistently(self, operations):
        """A second write by the same core to the same line always hits."""
        system = CoherentCacheSystem(
            private_config=CacheConfig(size=2 * KB, line_size=64, associativity=32),
            cores=2,
        )
        for core, line, is_write in operations:
            system.access(core, line * 64, AccessKind.WRITE if is_write else AccessKind.READ)
        system.access(0, 0, AccessKind.WRITE)
        assert system.access(0, 0, AccessKind.WRITE)  # immediate re-write hits


class TestReuseProfileAlgebra:
    rates = st.lists(st.floats(0.01, 10.0), min_size=1, max_size=5)
    distances = st.lists(st.floats(1.0, 1e6), min_size=1, max_size=5)

    @given(rates=rates, distances=distances, capacity=st.floats(0.5, 1e6))
    @settings(max_examples=60, deadline=None)
    def test_combination_is_additive(self, rates, distances, capacity):
        n = min(len(rates), len(distances))
        profiles = [
            ReuseProfile.point(distances[i], rates[i]) for i in range(n)
        ]
        combined = profiles[0].combine(*profiles[1:])
        assert combined.miss_rate(capacity) == sum(
            p.miss_rate(capacity) for p in profiles
        )

    @given(rate=st.floats(0.01, 100.0), factor=st.floats(0.0, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_scaling_scales_miss_rate(self, rate, factor):
        profile = ReuseProfile.point(100.0, rate)
        assert profile.scaled(factor).miss_rate(10) == rate * factor

    @given(
        distance=st.floats(1.0, 1e4),
        threads=st.integers(1, 64),
        capacity=st.floats(0.5, 1e6),
    )
    @settings(max_examples=60, deadline=None)
    def test_dilation_never_reduces_misses(self, distance, threads, capacity):
        from repro.reuse.interleave import dilate_private

        profile = ReuseProfile.point(distance, 1.0)
        dilated = dilate_private(profile, threads)
        assert dilated.miss_rate(capacity) >= profile.miss_rate(capacity)

    @given(capacity=st.floats(0, 1e7))
    @settings(max_examples=40, deadline=None)
    def test_miss_rate_bounded_by_total(self, capacity):
        profile = ReuseProfile.uniform(1000, 5.0).combine(ReuseProfile.streaming(2.0))
        assert 0 <= profile.miss_rate(capacity) <= profile.total_rate + 1e-9


class TestModelMonotonicity:
    @given(
        cache_mb=st.sampled_from([4, 8, 16, 32, 64, 128]),
        threads=st.sampled_from([1, 8, 16, 32]),
    )
    @settings(max_examples=40, deadline=None)
    def test_workload_mpki_decreases_with_size(self, cache_mb, threads):
        from repro.units import MB
        from repro.workloads.profiles import memory_model

        model = memory_model("FIMI")
        smaller = model.llc_mpki(cache_mb * MB, 64, threads)
        bigger = model.llc_mpki(2 * cache_mb * MB, 64, threads)
        assert bigger <= smaller + 1e-9

    @given(threads=st.sampled_from([1, 2, 4, 8, 16, 32]))
    @settings(max_examples=20, deadline=None)
    def test_mpki_never_decreases_with_threads(self, threads):
        from repro.units import MB
        from repro.workloads.profiles import memory_model

        for name in ("SHOT", "FIMI", "MDS"):
            model = memory_model(name)
            single = model.llc_mpki(32 * MB, 64, 1)
            multi = model.llc_mpki(32 * MB, 64, threads)
            assert multi >= single - 1e-9
