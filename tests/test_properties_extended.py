"""Property-based tests for the extension modules.

Hypothesis coverage for Apriori↔FP-growth agreement, Hirschberg
optimality, victim-cache dominance, L1-filter soundness, and the
associativity correction's limits.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheConfig, FullyAssociativeLRU, SetAssociativeCache
from repro.cache.victim import VictimCachedHierarchy
from repro.mining.align import hirschberg_alignment, nw_score
from repro.mining.apriori import apriori
from repro.mining.fpgrowth import fp_growth
from repro.reuse.associativity import set_associative_miss_rate
from repro.reuse.histogram import ReuseProfile
from repro.trace.filters import l1_filter
from repro.trace.record import TraceChunk
from repro.units import KB

transactions_strategy = st.lists(
    st.lists(st.integers(0, 11), min_size=1, max_size=6).map(
        lambda t: sorted(set(t))
    ),
    min_size=1,
    max_size=40,
)


class TestFIMAgreement:
    @given(data=transactions_strategy, min_support=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_apriori_equals_fp_growth(self, data, min_support):
        assert apriori(data, min_support) == fp_growth(data, min_support)


class TestHirschbergOptimality:
    sequences = st.lists(st.integers(0, 3), min_size=0, max_size=24).map(
        lambda s: np.array(s, dtype=np.uint8)
    )

    @given(a=sequences, b=sequences)
    @settings(max_examples=60, deadline=None)
    def test_score_equals_needleman_wunsch(self, a, b):
        score, _ = hirschberg_alignment(a, b)
        assert score == nw_score(a, b)

    @given(a=sequences, b=sequences)
    @settings(max_examples=40, deadline=None)
    def test_alignment_covers_both_sequences(self, a, b):
        _, pairs = hirschberg_alignment(a, b)
        assert sorted(i for i, _ in pairs if i is not None) == list(range(len(a)))
        assert sorted(j for _, j in pairs if j is not None) == list(range(len(b)))


addresses_strategy = st.lists(
    st.integers(0, 127).map(lambda line: line * 64), min_size=1, max_size=400
)


class TestVictimDominance:
    @given(addresses=addresses_strategy)
    @settings(max_examples=30, deadline=None)
    def test_victim_buffer_never_hurts(self, addresses):
        chunk = TraceChunk(addresses)
        config = CacheConfig(size=1 * KB, line_size=64, associativity=1)
        plain = SetAssociativeCache(config)
        plain.access_chunk(chunk)
        with_victim = VictimCachedHierarchy(config, victim_lines=4)
        with_victim.access_chunk(chunk)
        assert with_victim.misses <= plain.stats.misses

    @given(addresses=addresses_strategy)
    @settings(max_examples=30, deadline=None)
    def test_combined_structure_bounded_by_bigger_cache(self, addresses):
        """Primary(C) + victim(V lines) never beats fully-assoc LRU of
        C+V... is false in general for set-assoc primaries, but the
        combined structure always loses to a fully-associative cache of
        the combined size on *miss count upper bound*: cold misses."""
        chunk = TraceChunk(addresses)
        distinct = len(np.unique(chunk.lines(64)))
        hierarchy = VictimCachedHierarchy(
            CacheConfig(size=1 * KB, line_size=64, associativity=1), victim_lines=4
        )
        hierarchy.access_chunk(chunk)
        assert hierarchy.misses >= distinct  # at least the cold misses


class TestL1FilterSoundness:
    @given(addresses=addresses_strategy)
    @settings(max_examples=30, deadline=None)
    def test_filtered_is_subsequence(self, addresses):
        chunk = TraceChunk(addresses)
        filtered = l1_filter(chunk, CacheConfig.fully_associative(512))
        assert len(filtered) <= len(chunk)
        # All distinct lines survive (cold misses always pass through).
        assert set(np.unique(filtered.lines(64))) == set(np.unique(chunk.lines(64)))

    @given(addresses=addresses_strategy)
    @settings(max_examples=30, deadline=None)
    def test_downstream_misses_within_residual(self, addresses):
        chunk = TraceChunk(addresses)
        filtered = l1_filter(chunk, CacheConfig.fully_associative(512))
        raw = FullyAssociativeLRU(64)
        raw.access_chunk(chunk)
        after = FullyAssociativeLRU(64)
        after.access_chunk(filtered)
        # Filtered misses can only exceed raw (lost recency refreshes),
        # never undercount, and stay within a small residual.
        assert raw.stats.misses <= after.stats.misses <= raw.stats.misses + len(chunk) // 10 + 2


class TestAssociativityCorrectionLimits:
    # Note: for stack distances *beyond* capacity, a set-associative
    # cache can luckily beat fully-associative LRU (no intervening line
    # happens to map to the victim's set), so fully-assoc is NOT a
    # pointwise lower bound in general — only within capacity.

    @given(
        footprint=st.integers(64, 4096),
        associativity=st.sampled_from([1, 2, 4, 8, 16]),
    )
    @settings(max_examples=40, deadline=None)
    def test_bounded_by_total_rate(self, footprint, associativity):
        profile = ReuseProfile.uniform(footprint, 10.0, points=64)
        corrected = set_associative_miss_rate(profile, 64 * 1024, 64, associativity)
        assert 0.0 <= corrected <= profile.total_rate + 1e-9

    @given(
        footprint=st.integers(64, 1000),
        associativity=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_conflicts_only_add_misses_below_capacity(self, footprint, associativity):
        """Within capacity (footprint < 1024 lines) fully-assoc LRU has
        zero misses, so any set-associative misses are pure conflicts."""
        profile = ReuseProfile.uniform(footprint, 10.0, points=64)
        cache_size = 64 * 1024
        fully = profile.miss_rate(cache_size / 64)
        corrected = set_associative_miss_rate(profile, cache_size, 64, associativity)
        assert fully == 0.0
        assert corrected >= -1e-9

    @given(footprint=st.integers(512, 1000))
    @settings(max_examples=30, deadline=None)
    def test_associativity_reduces_conflicts_below_capacity(self, footprint):
        profile = ReuseProfile.uniform(footprint, 10.0, points=64)
        cache_size = 64 * 1024
        direct = set_associative_miss_rate(profile, cache_size, 64, 1)
        eight_way = set_associative_miss_rate(profile, cache_size, 64, 8)
        assert direct >= eight_way - 1e-9
        assert direct > 0.0  # direct-mapped conflicts are real here
