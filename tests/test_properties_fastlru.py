"""Property tests: the fast LRU kernel equals the generic LRU policy.

The audit layer's differential oracle (:mod:`repro.audit.oracle`)
samples this equivalence at runtime; these tests establish it
exhaustively over random geometries and access patterns, so a kernel
regression is caught at test time, not discovered as an oracle
violation inside someone's sweep.  Three faces are checked: per-access
outcomes (hit, evicted victim), final directory state in LRU→MRU
order, and the batched path's consecutive-repeat collapse.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.fastlru import FastLRUKernel
from repro.cache.replacement import LRUPolicy

geometries = st.tuples(
    st.sampled_from([1, 2, 4, 8, 16]),  # num_sets (power of two)
    st.integers(min_value=1, max_value=8),  # associativity
)

lines_strategy = st.lists(
    st.integers(min_value=0, max_value=255), min_size=1, max_size=400
)


def drive_scalar(kernel, num_sets, lines):
    """Scalar per-access outcomes: (hit, evicted) per line."""
    mask = num_sets - 1
    return [kernel.lookup(line & mask, line) for line in lines]


def directories(policy, num_sets):
    """Resident tags of every set, LRU→MRU."""
    return [policy.resident_tags(s) for s in range(num_sets)]


class TestScalarEquivalence:
    @given(geometry=geometries, lines=lines_strategy)
    @settings(max_examples=80, deadline=None)
    def test_per_access_outcomes_match(self, geometry, lines):
        num_sets, assoc = geometry
        fast = FastLRUKernel(num_sets, assoc)
        reference = LRUPolicy(num_sets, assoc)
        assert drive_scalar(fast, num_sets, lines) == drive_scalar(
            reference, num_sets, lines
        )
        assert directories(fast, num_sets) == directories(reference, num_sets)

    @given(geometry=geometries, lines=lines_strategy)
    @settings(max_examples=40, deadline=None)
    def test_contains_and_invalidate_match(self, geometry, lines):
        num_sets, assoc = geometry
        fast = FastLRUKernel(num_sets, assoc)
        reference = LRUPolicy(num_sets, assoc)
        drive_scalar(fast, num_sets, lines)
        drive_scalar(reference, num_sets, lines)
        mask = num_sets - 1
        for line in set(lines):
            assert fast.contains(line & mask, line) == reference.contains(
                line & mask, line
            )
        victim = lines[len(lines) // 2]
        assert fast.invalidate(victim & mask, victim) == reference.invalidate(
            victim & mask, victim
        )
        assert directories(fast, num_sets) == directories(reference, num_sets)


class TestBatchedEquivalence:
    @given(geometry=geometries, lines=lines_strategy)
    @settings(max_examples=80, deadline=None)
    def test_batch_equals_generic_loop(self, geometry, lines):
        num_sets, assoc = geometry
        fast = FastLRUKernel(num_sets, assoc)
        reference = LRUPolicy(num_sets, assoc)
        arr = np.asarray(lines, dtype=np.uint64)
        sets = arr & np.uint64(num_sets - 1) if num_sets > 1 else None
        result = fast.lookup_batch(arr, sets)
        ref_outcomes = drive_scalar(reference, num_sets, lines)
        assert result.misses == sum(1 for hit, _ in ref_outcomes if not hit)
        assert result.evictions == sum(
            1 for _, evicted in ref_outcomes if evicted is not None
        )
        assert directories(fast, num_sets) == directories(reference, num_sets)

    @given(
        geometry=geometries,
        lines=lines_strategy,
        repeats=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_repeat_collapse_is_invisible(self, geometry, lines, repeats):
        """Consecutive same-line repeats (the collapse fast path) leave
        per-access totals and directory state exactly as the generic
        policy produces them."""
        num_sets, assoc = geometry
        repeated = [line for line in lines for _ in range(repeats)]
        fast = FastLRUKernel(num_sets, assoc)
        reference = LRUPolicy(num_sets, assoc)
        arr = np.asarray(repeated, dtype=np.uint64)
        sets = arr & np.uint64(num_sets - 1) if num_sets > 1 else None
        result = fast.lookup_batch(arr, sets)
        ref_outcomes = drive_scalar(reference, num_sets, repeated)
        assert len(result.hits) == len(repeated)
        np.testing.assert_array_equal(
            np.asarray(result.hits, dtype=bool),
            np.array([hit for hit, _ in ref_outcomes], dtype=bool),
        )
        assert directories(fast, num_sets) == directories(reference, num_sets)


class TestCheckpointStateRoundtrip:
    @given(geometry=geometries, lines=lines_strategy)
    @settings(max_examples=40, deadline=None)
    def test_dump_load_preserves_order_and_future(self, geometry, lines):
        """A dumped-and-reloaded kernel is indistinguishable going
        forward — the property the checkpoint layer rests on."""
        num_sets, assoc = geometry
        original = FastLRUKernel(num_sets, assoc)
        drive_scalar(original, num_sets, lines)
        clone = FastLRUKernel(num_sets, assoc)
        clone.load_state(original.dump_state())
        assert directories(clone, num_sets) == directories(original, num_sets)
        future = lines[::-1][:50]
        assert drive_scalar(clone, num_sets, future) == drive_scalar(
            original, num_sets, future
        )
