"""Tests for the FSB message protocol codec."""

import pytest

from repro.errors import ProtocolError
from repro.protocol import Message, MessageCodec, MessageKind


class TestClassification:
    def test_message_addresses_detected(self):
        address = MessageCodec.encode(Message(MessageKind.START_EMULATION))[0]
        assert MessageCodec.is_message(address)

    def test_data_addresses_not_messages(self):
        for address in (0x0, 0x1000_0000, 0x7FFF_FFFF_FFFF):
            assert not MessageCodec.is_message(address)


class TestRoundTrip:
    @pytest.mark.parametrize("kind", [
        MessageKind.START_EMULATION,
        MessageKind.STOP_EMULATION,
    ])
    def test_commands(self, kind):
        codec = MessageCodec()
        encoded = MessageCodec.encode(Message(kind))
        assert len(encoded) == 1
        assert codec.decode(encoded[0]) == Message(kind, 0)

    def test_core_id_payload(self):
        codec = MessageCodec()
        encoded = MessageCodec.encode(Message(MessageKind.CORE_ID, 31))
        assert codec.decode(encoded[0]) == Message(MessageKind.CORE_ID, 31)

    def test_narrow_counter(self):
        codec = MessageCodec()
        message = Message(MessageKind.INSTRUCTIONS_RETIRED, 123456789)
        (address,) = MessageCodec.encode(message)
        assert codec.decode(address) == message

    def test_wide_counter_two_transactions(self):
        codec = MessageCodec()
        payload = 3 * 10**14  # exceeds 40 bits
        message = Message(MessageKind.CYCLES_COMPLETED, payload)
        encoded = MessageCodec.encode(message)
        assert len(encoded) == 2
        assert codec.decode(encoded[0]) is None  # high half buffered
        assert codec.decode(encoded[1]) == message

    def test_decode_stream(self):
        codec = MessageCodec()
        messages = [
            Message(MessageKind.START_EMULATION),
            Message(MessageKind.CORE_ID, 5),
            Message(MessageKind.INSTRUCTIONS_RETIRED, 2**45),
            Message(MessageKind.STOP_EMULATION),
        ]
        addresses = [a for m in messages for a in MessageCodec.encode(m)]
        assert list(codec.decode_stream(addresses)) == messages


class TestErrors:
    def test_negative_payload_rejected(self):
        with pytest.raises(ProtocolError):
            MessageCodec.encode(Message(MessageKind.CORE_ID, -1))

    def test_too_wide_payload_rejected(self):
        with pytest.raises(ProtocolError):
            MessageCodec.encode(Message(MessageKind.INSTRUCTIONS_RETIRED, 1 << 81))

    def test_wide_payload_on_command_rejected(self):
        with pytest.raises(ProtocolError):
            MessageCodec.encode(Message(MessageKind.CORE_ID, 1 << 41))

    def test_decoding_data_address_rejected(self):
        with pytest.raises(ProtocolError):
            MessageCodec().decode(0x1234)

    def test_unknown_opcode_rejected(self):
        from repro.protocol import MESSAGE_BASE, _OPCODE_SHIFT

        with pytest.raises(ProtocolError):
            MessageCodec().decode(MESSAGE_BASE | (0x7F << _OPCODE_SHIFT))
