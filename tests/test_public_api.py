"""Public-API quality gates.

Asserts the package's documented surface actually exists: every name in
``__all__`` resolves, every public module/class/function carries a
docstring, and the console-script entry points import.
"""

import importlib
import inspect

import pytest

import repro

PUBLIC_MODULES = [
    "repro.units",
    "repro.errors",
    "repro.protocol",
    "repro.trace.record",
    "repro.trace.stream",
    "repro.trace.generators",
    "repro.trace.instrument",
    "repro.trace.stats",
    "repro.trace.filters",
    "repro.trace.io",
    "repro.trace.synthesis",
    "repro.cache.cache",
    "repro.cache.replacement",
    "repro.cache.hierarchy",
    "repro.cache.coherence",
    "repro.cache.prefetch",
    "repro.cache.emulator",
    "repro.cache.sampling",
    "repro.cache.stats",
    "repro.cache.victim",
    "repro.cache.dramsim",
    "repro.cache.organizations",
    "repro.core.fsb",
    "repro.core.dex",
    "repro.core.softsdv",
    "repro.core.cosim",
    "repro.core.experiment",
    "repro.core.phases",
    "repro.reuse.olken",
    "repro.reuse.histogram",
    "repro.reuse.model",
    "repro.reuse.interleave",
    "repro.reuse.associativity",
    "repro.reuse.sampling",
    "repro.reuse.footprint",
    "repro.mining.datasets",
    "repro.mining.bayesnet",
    "repro.mining.svm",
    "repro.mining.scfg",
    "repro.mining.fpgrowth",
    "repro.mining.apriori",
    "repro.mining.align",
    "repro.mining.summarize",
    "repro.mining.video",
    "repro.workloads.base",
    "repro.workloads.models",
    "repro.workloads.profiles",
    "repro.workloads.registry",
    "repro.workloads.mixes",
    "repro.perf.cpi",
    "repro.perf.bandwidth",
    "repro.perf.prefetch_study",
    "repro.perf.dramcache",
    "repro.harness.report",
    "repro.harness.figures",
    "repro.harness.table1",
    "repro.harness.table2",
    "repro.harness.fig4",
    "repro.harness.fig5",
    "repro.harness.fig6",
    "repro.harness.fig7",
    "repro.harness.fig8",
    "repro.harness.runall",
    "repro.harness.projection",
    "repro.harness.ablations",
    "repro.harness.bandwidth_study",
    "repro.harness.cli",
    "repro.harness.describe",
    "repro.harness.export",
    "repro.harness.linesize_traffic",
    "repro.harness.sharing_study",
    "repro.harness.parallel",
    "repro.harness.replay",
    "repro.harness.supervisor",
    "repro.trace.cache",
    "repro.simpoint",
    "repro.simpoint.intervals",
    "repro.simpoint.fingerprint",
    "repro.simpoint.cluster",
    "repro.simpoint.engine",
    "repro.simpoint.validate",
    "repro.faults.spec",
    "repro.faults.report",
    "repro.faults.injector",
    "repro.telemetry.registry",
    "repro.telemetry.spans",
    "repro.telemetry.sinks",
    "repro.telemetry.windows",
    "repro.telemetry.runtime",
    "repro.telemetry.profile",
]

ENTRY_POINTS = [
    ("repro.harness.table1", "main"),
    ("repro.harness.table2", "main"),
    ("repro.harness.fig4", "main"),
    ("repro.harness.fig8", "main"),
    ("repro.harness.runall", "main"),
    ("repro.harness.projection", "main"),
    ("repro.harness.ablations", "main"),
    ("repro.harness.bandwidth_study", "main"),
    ("repro.harness.cli", "main"),
    ("repro.harness.describe", "main"),
]


class TestPackageSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_imports_with_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_public_callables_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-exports are documented at their home
            if not inspect.getdoc(obj):
                undocumented.append(name)
        assert not undocumented, f"{module_name}: missing docstrings on {undocumented}"

    @pytest.mark.parametrize("module_name,attribute", ENTRY_POINTS)
    def test_console_entry_points_exist(self, module_name, attribute):
        module = importlib.import_module(module_name)
        assert callable(getattr(module, attribute))
