"""Tests for the set-associativity correction (Smith's model)."""

import numpy as np
import pytest

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.errors import ConfigurationError
from repro.reuse.associativity import (
    conflict_overhead,
    hit_probability,
    set_associative_miss_rate,
)
from repro.reuse.histogram import ReuseProfile
from repro.reuse.model import empirical_profile
from repro.trace.generators import Region, uniform_random
from repro.units import KB, MB


class TestHitProbability:
    def test_fully_associative_reduces_to_threshold(self):
        distances = np.array([3.0, 4.0, 5.0])
        hits = hit_probability(distances, associativity=4, num_sets=1)
        assert list(hits) == [1.0, 0.0, 0.0]

    def test_infinite_distance_never_hits(self):
        hits = hit_probability(np.array([np.inf]), 8, 64)
        assert hits[0] == 0.0

    def test_monotone_in_distance(self):
        distances = np.array([10.0, 100.0, 1000.0, 10000.0])
        hits = hit_probability(distances, 8, 64)
        assert all(a >= b for a, b in zip(hits, hits[1:]))

    def test_monotone_in_associativity(self):
        distances = np.array([500.0])
        few = hit_probability(distances, 2, 64)[0]
        many = hit_probability(distances, 16, 64)[0]
        assert many >= few

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            hit_probability(np.array([1.0]), 0, 4)


class TestSetAssociativeMissRate:
    def test_conflicts_increase_misses(self):
        """Set-assoc misses >= fully-assoc misses for the same capacity."""
        profile = ReuseProfile.uniform(2000, 10.0, points=256)
        for associativity in (1, 2, 4, 8):
            overhead = conflict_overhead(profile, 64 * KB, 64, associativity)
            assert overhead >= -1e-9

    def test_high_associativity_converges_to_fully_assoc(self):
        profile = ReuseProfile.uniform(2000, 10.0, points=256)
        fully = profile.miss_rate(64 * KB / 64)
        wide = set_associative_miss_rate(profile, 64 * KB, 64, 256)
        assert wide == pytest.approx(fully, rel=0.05)

    def test_matches_exact_simulation_on_random_traffic(self):
        """Smith's model versus the real set-associative cache."""
        rng = np.random.default_rng(61)
        trace = uniform_random(Region(0, 128 * KB), count=40000, granule=64, rng=rng)
        instructions = len(trace) * 2
        profile = empirical_profile(trace, instructions)
        for associativity in (2, 4, 8):
            cache = SetAssociativeCache(
                CacheConfig(size=16 * KB, line_size=64, associativity=associativity)
            )
            cache.access_chunk(trace)
            observed = cache.stats.misses / instructions * 1000
            predicted = set_associative_miss_rate(profile, 16 * KB, 64, associativity)
            assert predicted == pytest.approx(observed, rel=0.08)

    def test_llc_conflict_overhead_is_small(self):
        """The assumption the reuse models rest on: at 16-way LLC
        geometry, conflicts add only a few percent."""
        from repro.workloads.profiles import memory_model

        profile = memory_model("FIMI").profile(64, 8)
        fully = profile.miss_rate(32 * MB / 64)
        overhead = conflict_overhead(profile, 32 * MB, 64, 16)
        assert overhead <= 0.12 * max(fully, 0.1)

    def test_rejects_degenerate_geometry(self):
        profile = ReuseProfile.point(10, 1.0)
        with pytest.raises(ConfigurationError):
            set_associative_miss_rate(profile, 64, 64, 2)
