"""Tests for the Denning working-set functions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.reuse.footprint import (
    distinct_in_windows,
    footprint_at_knee,
    working_set_function,
    working_set_size,
)
from repro.trace.generators import Region, cyclic_scan, uniform_random
from repro.trace.record import TraceChunk
from repro.units import MB


def brute_force_average(lines, window):
    n = len(lines)
    window = min(window, n)
    totals = [
        len(set(int(l) for l in lines[s : s + window]))
        for s in range(0, n - window + 1)
    ]
    return sum(totals) / len(totals)


class TestDistinctInWindows:
    @pytest.mark.parametrize("window", [1, 3, 7, 20])
    def test_matches_bruteforce_random(self, window):
        rng = np.random.default_rng(5)
        lines = rng.integers(0, 12, size=120).astype(np.uint64)
        assert distinct_in_windows(lines, window) == pytest.approx(
            brute_force_average(lines, window)
        )

    @pytest.mark.parametrize("window", [2, 5, 16])
    def test_matches_bruteforce_cyclic(self, window):
        lines = np.tile(np.arange(8, dtype=np.uint64), 10)
        assert distinct_in_windows(lines, window) == pytest.approx(
            brute_force_average(lines, window)
        )

    def test_window_one(self):
        lines = np.array([1, 1, 2], dtype=np.uint64)
        assert distinct_in_windows(lines, 1) == 1.0

    def test_window_covers_whole_trace(self):
        lines = np.array([1, 2, 1, 3], dtype=np.uint64)
        assert distinct_in_windows(lines, 100) == 3.0

    def test_monotone_in_window(self):
        rng = np.random.default_rng(9)
        lines = rng.integers(0, 64, size=500).astype(np.uint64)
        values = [distinct_in_windows(lines, w) for w in (4, 16, 64, 256)]
        assert values == sorted(values)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            distinct_in_windows(np.array([1], dtype=np.uint64), 0)

    def test_empty(self):
        assert distinct_in_windows(np.array([], dtype=np.uint64), 4) == 0.0


class TestWorkingSetFunctions:
    def test_cyclic_scan_saturates_at_footprint(self):
        trace = cyclic_scan(Region(0, 4096), passes=5, stride=64)
        ws = dict(working_set_function(trace, windows=[8, 64, 1000]))
        assert ws[8] == pytest.approx(8.0)
        assert ws[64] == pytest.approx(64.0)
        assert ws[1000] == pytest.approx(64.0)  # footprint is 64 lines

    def test_working_set_size_bytes(self):
        trace = cyclic_scan(Region(0, 4096), passes=3, stride=64)
        assert working_set_size(trace, window=1000) == 4096

    def test_random_ws_grows_sublinearly(self):
        trace = uniform_random(
            Region(0, 64 * 1024), count=8000, granule=64,
            rng=np.random.default_rng(11),
        )
        ws = dict(working_set_function(trace, windows=[64, 512]))
        # Re-references make distinct count < window length.
        assert ws[512] < 512
        assert ws[512] > ws[64]


class TestFootprintAtKnee:
    def test_reads_paper_knee(self):
        sweep = [(4 * MB, 10.0), (8 * MB, 9.5), (16 * MB, 3.0), (32 * MB, 2.9)]
        assert footprint_at_knee(sweep) == 16 * MB

    def test_flat_curve(self):
        sweep = [(4 * MB, 10.0), (8 * MB, 9.9)]
        assert footprint_at_knee(sweep) is None

    def test_agrees_with_model_knees(self):
        from repro.core.experiment import SCMP, cache_size_sweep
        from repro.units import PAPER_CACHE_SWEEP
        from repro.workloads.profiles import memory_model

        sweep = cache_size_sweep(memory_model("SHOT"), SCMP, PAPER_CACHE_SWEEP)
        assert footprint_at_knee(sweep) == 32 * MB
