"""Tests for reuse profiles."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.reuse.histogram import ReuseProfile


class TestConstruction:
    def test_point(self):
        profile = ReuseProfile.point(100.0, 5.0)
        assert profile.total_rate == 5.0
        assert profile.miss_rate(50) == 5.0
        assert profile.miss_rate(101) == 0.0

    def test_uniform_miss_ratio_is_linear(self):
        profile = ReuseProfile.uniform(footprint_lines=1000, rate=10.0, points=200)
        assert profile.miss_ratio(0) == pytest.approx(1.0)
        assert profile.miss_ratio(500) == pytest.approx(0.5, abs=0.01)
        assert profile.miss_ratio(1000) == pytest.approx(0.0, abs=0.01)

    def test_uniform_range(self):
        profile = ReuseProfile.uniform_range(100, 200, rate=4.0)
        assert profile.miss_rate(50) == pytest.approx(4.0)
        assert profile.miss_rate(150) == pytest.approx(2.0, rel=0.05)
        assert profile.miss_rate(250) == 0.0

    def test_streaming_never_hits(self):
        profile = ReuseProfile.streaming(3.0)
        assert profile.miss_rate(1e12) == 3.0

    def test_rejects_negative_rates(self):
        with pytest.raises(TraceError):
            ReuseProfile(np.array([1.0]), np.array([-1.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(TraceError):
            ReuseProfile(np.array([1.0, 2.0]), np.array([1.0]))

    def test_from_distances(self):
        distances = np.array([-1, -1, 5, 5, 10])  # two cold, three warm
        profile = ReuseProfile.from_distances(distances, instructions=1000)
        assert profile.total_rate == pytest.approx(5.0)
        assert profile.miss_rate(6) == pytest.approx(3.0)  # d=10 + 2 cold(inf)


class TestAlgebra:
    def test_combine_adds_rates(self):
        combined = ReuseProfile.point(10, 1.0).combine(ReuseProfile.point(20, 2.0))
        assert combined.total_rate == 3.0
        assert combined.miss_rate(15) == 2.0

    def test_scaled(self):
        assert ReuseProfile.point(10, 2.0).scaled(0.5).total_rate == 1.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(TraceError):
            ReuseProfile.point(10, 1.0).scaled(-1)

    def test_dilated_scales_distances(self):
        profile = ReuseProfile.point(100, 1.0).dilated(4, footprint_cap=1000)
        assert profile.miss_rate(399) == 1.0
        assert profile.miss_rate(401) == 0.0

    def test_dilated_caps_at_footprint(self):
        profile = ReuseProfile.point(100, 1.0).dilated(100, footprint_cap=500)
        assert profile.miss_rate(499) == 1.0
        assert profile.miss_rate(501) == 0.0

    def test_dilated_preserves_streaming(self):
        profile = ReuseProfile.streaming(1.0).dilated(4, footprint_cap=10)
        assert profile.miss_rate(1e15) == 1.0

    def test_footprint_lines(self):
        profile = ReuseProfile.point(100, 1.0).combine(ReuseProfile.streaming(1.0))
        assert profile.footprint_lines() == 100.0


class TestQueries:
    def test_miss_ratio_empty(self):
        assert ReuseProfile.empty().miss_ratio(10) == 0.0

    def test_boundary_distance_counts_as_miss(self):
        """distance == capacity means the line was just evicted."""
        profile = ReuseProfile.point(64, 1.0)
        assert profile.miss_rate(64) == 1.0
        assert profile.miss_rate(64.001) == 0.0
