"""Tests for multi-thread reuse composition, validated against exact
simulation of genuinely interleaved traces."""

import numpy as np
import pytest

from repro.reuse.histogram import ReuseProfile
from repro.reuse.interleave import compose_threads, dilate_private
from repro.reuse.model import exact_miss_count, miss_ratio_at
from repro.trace.generators import Region, cyclic_scan, uniform_random
from repro.trace.record import TraceChunk
from repro.trace.stream import materialize, round_robin_interleave


class TestDilatePrivate:
    def test_single_thread_is_identity(self):
        profile = ReuseProfile.point(100, 1.0)
        assert dilate_private(profile, 1) is profile

    def test_distances_scale_with_threads(self):
        profile = dilate_private(ReuseProfile.point(100, 1.0), 4)
        assert profile.miss_rate(399) == 1.0
        assert profile.miss_rate(401) == 0.0

    def test_rejects_bad_threads(self):
        with pytest.raises(ValueError):
            dilate_private(ReuseProfile.point(1, 1.0), 0)


class TestComposeThreads:
    def test_shared_part_unchanged(self):
        shared = ReuseProfile.point(50, 1.0)
        private = ReuseProfile.point(100, 1.0)
        composed = compose_threads(shared, private, 8)
        # Shared reuse still hits at capacity 51+.
        assert composed.miss_rate(51) == 1.0  # only private part misses
        assert composed.miss_rate(801) == 0.0


class TestDilationMatchesExactInterleaving:
    """The composition rule versus real interleaved-trace simulation."""

    def test_private_cyclic_scans(self):
        """T interleaved private scans behave like one T-times-bigger scan."""
        threads = 4
        region_lines = 64
        passes = 6
        streams = [
            [
                cyclic_scan(
                    Region(0x100000 * (1 + t), region_lines * 64),
                    passes=passes,
                    stride=64,
                )
            ]
            for t in range(threads)
        ]
        trace = materialize(round_robin_interleave(streams, quantum=16))
        single = ReuseProfile.point(region_lines, 1.0)
        composed = dilate_private(single, threads)
        # Below the composed footprint: everything misses (steady state).
        small = exact_miss_count(trace, (region_lines * threads - 16) * 64)
        assert composed.miss_ratio((region_lines * threads - 16)) == 1.0
        assert small / len(trace) > 0.95
        # Above it: only cold misses.
        big = exact_miss_count(trace, (region_lines * threads + 16) * 64)
        assert composed.miss_ratio(region_lines * threads + 16) == 0.0
        assert big == region_lines * threads

    def test_private_random_regions(self):
        """Interleaved uniform-random threads = uniform over T x W."""
        threads = 4
        region_lines = 128
        rng = np.random.default_rng(41)
        streams = [
            [
                uniform_random(
                    Region(0x100000 * (1 + t), region_lines * 64),
                    count=20000,
                    granule=64,
                    rng=rng,
                )
            ]
            for t in range(threads)
        ]
        trace = materialize(round_robin_interleave(streams, quantum=8))
        composed = dilate_private(
            ReuseProfile.uniform(region_lines, 1.0, points=256), threads
        )
        for capacity in (128, 256, 384):
            predicted = composed.miss_ratio(capacity)
            observed = exact_miss_count(trace, capacity * 64) / len(trace)
            assert abs(predicted - observed) < 0.05

    def test_shared_region_invariance(self):
        """Threads referencing the same region: miss ratio tracks the
        single-thread profile, independent of thread count."""
        region_lines = 128
        rng = np.random.default_rng(43)
        make = lambda: uniform_random(
            Region(0x100000, region_lines * 64), count=8000, granule=64,
            rng=np.random.default_rng(rng.integers(1 << 30)),
        )
        for threads in (2, 8):
            streams = [[make()] for _ in range(threads)]
            trace = materialize(round_robin_interleave(streams, quantum=8))
            profile = ReuseProfile.uniform(region_lines, 1.0, points=256)
            for capacity in (32, 64, 96):
                predicted = profile.miss_ratio(capacity)
                observed = exact_miss_count(trace, capacity * 64) / len(trace)
                assert abs(predicted - observed) < 0.05
