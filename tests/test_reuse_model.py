"""Model-versus-exact validation: the methodology's load-bearing tests.

The paper-scale results come from the analytic reuse models; these tests
establish that at simulatable scale the models agree with exact cache
simulation — the software analog of validating a performance model
against RTL before trusting its projections.
"""

import numpy as np
import pytest

from repro.reuse.histogram import ReuseProfile
from repro.reuse.model import (
    empirical_profile,
    exact_miss_count,
    miss_ratio_at,
    mpki_at,
    mpki_curve,
    predicted_misses,
    relative_error,
    stack_distance_miss_count,
)
from repro.trace.generators import Region, cyclic_scan, uniform_random
from repro.trace.record import TraceChunk
from repro.units import KB


class TestStackDistanceIdentity:
    def test_identity_on_mixed_trace(self, mixed_trace):
        for cache_size in (4 * KB, 16 * KB, 64 * KB):
            assert stack_distance_miss_count(
                mixed_trace, cache_size
            ) == exact_miss_count(mixed_trace, cache_size)


class TestAnalyticVsExact:
    def test_cyclic_component_model_matches_simulation(self):
        """point(W) predicts a cyclic scan's misses exactly (steady state)."""
        region_lines = 256
        passes = 8
        trace = cyclic_scan(Region(0, region_lines * 64), passes=passes, stride=64)
        instructions = len(trace)
        profile = ReuseProfile.point(region_lines, 1000.0)  # all accesses
        for capacity_lines in (64, 128, 255):
            predicted = predicted_misses(profile, capacity_lines * 64, 64, instructions)
            observed = exact_miss_count(trace, capacity_lines * 64)
            # Model has no cold-start term; allow one pass worth of slack.
            assert abs(predicted - observed) <= region_lines
        # Above the working set only cold misses remain.
        assert exact_miss_count(trace, 257 * 64) == region_lines

    def test_uniform_component_model_matches_simulation(self):
        """uniform(W) predicts uniform-random misses within a few percent."""
        region_lines = 512
        trace = uniform_random(
            Region(0, region_lines * 64),
            count=60000,
            granule=64,
            rng=np.random.default_rng(31),
        )
        profile = ReuseProfile.uniform(region_lines, 1000.0, points=256)
        for capacity_lines in (64, 128, 256, 384):
            predicted_ratio = miss_ratio_at(profile, capacity_lines * 64, 64)
            observed_ratio = exact_miss_count(trace, capacity_lines * 64) / len(trace)
            assert relative_error(predicted_ratio, observed_ratio) < 0.08

    def test_empirical_profile_reproduces_exact_misses(self, mixed_trace):
        """A measured profile replays the trace's own miss curve exactly
        (modulo cold counting, which from_distances folds into inf)."""
        instructions = len(mixed_trace) * 2
        profile = empirical_profile(mixed_trace, instructions)
        for cache_size in (8 * KB, 32 * KB, 128 * KB):
            predicted = predicted_misses(profile, cache_size, 64, instructions)
            observed = exact_miss_count(mixed_trace, cache_size)
            assert predicted == pytest.approx(observed, rel=1e-9)


class TestCurveHelpers:
    def test_mpki_curve_shape(self):
        profile = ReuseProfile.point(1024, 5.0)
        curve = mpki_curve(profile, [32 * KB, 64 * KB, 128 * KB], line_size=64)
        assert [m for _, m in curve] == [5.0, 5.0, 0.0]

    def test_mpki_at_units(self):
        profile = ReuseProfile.point(100, 7.0)
        assert mpki_at(profile, 64 * 99, 64) == 7.0
        assert mpki_at(profile, 64 * 101, 64) == 0.0

    def test_relative_error(self):
        assert relative_error(11, 10) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
