"""Tests for exact stack-distance computation."""

import numpy as np

from repro.cache.cache import FullyAssociativeLRU
from repro.reuse.olken import COLD, miss_count, miss_curve, stack_distances
from repro.trace.generators import Region, cyclic_scan, uniform_random, zipf_random
from repro.trace.record import TraceChunk


def naive_stack_distances(lines: list[int]) -> list[int]:
    """Brute-force reference: distinct lines since the previous touch."""
    result = []
    for t, line in enumerate(lines):
        previous = None
        for s in range(t - 1, -1, -1):
            if lines[s] == line:
                previous = s
                break
        if previous is None:
            result.append(COLD)
        else:
            result.append(len(set(lines[previous + 1 : t])))
    return result


class TestStackDistances:
    def test_simple_sequence(self):
        # lines: a b a c b a
        chunk = TraceChunk([0, 64, 0, 128, 64, 0])
        distances = list(stack_distances(chunk, 64))
        assert distances == [COLD, COLD, 1, COLD, 2, 2]

    def test_matches_naive_on_random(self):
        chunk = uniform_random(
            Region(0, 2048), count=300, rng=np.random.default_rng(3)
        )
        lines = [int(l) for l in chunk.lines(64)]
        assert list(stack_distances(chunk, 64)) == naive_stack_distances(lines)

    def test_matches_naive_on_zipf(self):
        chunk = zipf_random(
            Region(0, 8192), count=400, granule=64, rng=np.random.default_rng(9)
        )
        lines = [int(l) for l in chunk.lines(64)]
        assert list(stack_distances(chunk, 64)) == naive_stack_distances(lines)

    def test_cyclic_scan_distance_is_footprint(self):
        chunk = cyclic_scan(Region(0, 4096), passes=3, stride=64)
        distances = stack_distances(chunk, 64)
        footprint = 4096 // 64
        warm = distances[footprint:]
        assert set(warm.tolist()) == {footprint - 1}

    def test_empty(self):
        assert len(stack_distances(TraceChunk.empty())) == 0


class TestMissEquivalence:
    """THE core identity: stack distance >= C  <=>  LRU miss at capacity C."""

    def test_equivalence_across_capacities(self):
        chunk = uniform_random(
            Region(0, 64 * 1024), count=5000, rng=np.random.default_rng(21)
        )
        distances = stack_distances(chunk, 64)
        for capacity in (16, 64, 256, 1024):
            cache = FullyAssociativeLRU(capacity_lines=capacity)
            cache.access_chunk(chunk)
            assert miss_count(distances, capacity) == cache.stats.misses

    def test_equivalence_on_scans(self):
        chunk = cyclic_scan(Region(0, 16 * 1024), passes=4, stride=32)
        distances = stack_distances(chunk, 64)
        for capacity in (128, 255, 256, 257, 512):
            cache = FullyAssociativeLRU(capacity_lines=capacity)
            cache.access_chunk(chunk)
            assert miss_count(distances, capacity) == cache.stats.misses

    def test_miss_curve_monotone(self):
        chunk = uniform_random(
            Region(0, 32 * 1024), count=3000, rng=np.random.default_rng(5)
        )
        distances = stack_distances(chunk, 64)
        curve = miss_curve(distances, [8, 16, 32, 64, 128, 256])
        misses = [m for _, m in curve]
        assert misses == sorted(misses, reverse=True)

    def test_cold_counting_toggle(self):
        chunk = TraceChunk([0, 64, 0])
        distances = stack_distances(chunk, 64)
        assert miss_count(distances, 8, count_cold=True) == 2
        assert miss_count(distances, 8, count_cold=False) == 0
