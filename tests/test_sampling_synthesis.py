"""Tests for SHARDS-style sampling and stack-model trace synthesis."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.reuse.histogram import ReuseProfile
from repro.reuse.model import empirical_profile, exact_miss_count
from repro.reuse.sampling import sampled_lines_mask, sampled_mpki, sampled_profile
from repro.trace.generators import Region, cyclic_scan, uniform_random, zipf_random
from repro.trace.record import TraceChunk
from repro.trace.synthesis import resynthesize, synthesize_trace
from repro.units import KB


class TestSampledLinesMask:
    def test_spatial_consistency(self):
        """Every access to one line shares its sampling fate."""
        lines = np.array([5, 7, 5, 9, 7, 5], dtype=np.uint64)
        mask = sampled_lines_mask(lines, 0.5)
        by_line = {}
        for line, sampled in zip(lines, mask):
            assert by_line.setdefault(int(line), bool(sampled)) == bool(sampled)

    def test_rate_controls_fraction(self):
        lines = np.arange(100_000, dtype=np.uint64)
        for rate in (0.05, 0.25, 0.75):
            fraction = sampled_lines_mask(lines, rate).mean()
            assert fraction == pytest.approx(rate, abs=0.02)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            sampled_lines_mask(np.array([1], dtype=np.uint64), 0.0)


class TestSampledProfile:
    def test_rate_one_equals_exact(self):
        chunk = uniform_random(
            Region(0, 64 * KB), count=5000, granule=64, rng=np.random.default_rng(3)
        )
        instructions = 2 * len(chunk)
        exact = empirical_profile(chunk, instructions)
        sampled = sampled_profile(chunk, instructions, rate=1.0)
        for capacity in (64, 256, 512):
            assert sampled.miss_rate(capacity) == pytest.approx(
                exact.miss_rate(capacity), rel=1e-9
            )

    @pytest.mark.parametrize("rate", [0.1, 0.3])
    def test_estimates_miss_curve(self, rate):
        chunk = uniform_random(
            Region(0, 256 * KB), count=30000, granule=64, rng=np.random.default_rng(7)
        )
        instructions = 2 * len(chunk)
        for cache_size in (32 * KB, 64 * KB, 128 * KB):
            exact = (
                exact_miss_count(chunk, cache_size) / instructions * 1000
            )
            estimate = sampled_mpki(chunk, instructions, cache_size, rate=rate)
            assert estimate == pytest.approx(exact, rel=0.15)

    def test_works_on_skewed_traffic(self):
        chunk = zipf_random(
            Region(0, 256 * KB), count=30000, alpha=1.2, granule=64,
            rng=np.random.default_rng(9),
        )
        instructions = len(chunk)
        exact = exact_miss_count(chunk, 32 * KB) / instructions * 1000
        estimate = sampled_mpki(chunk, instructions, 32 * KB, rate=0.2)
        assert estimate == pytest.approx(exact, rel=0.25)

    def test_empty_sample(self):
        chunk = TraceChunk([0])
        profile = sampled_profile(chunk, 10, rate=1e-7)
        # With a vanishing rate the single line is almost surely skipped.
        assert profile.total_rate in (0.0, pytest.approx(1e8 * 100, rel=1))


class TestSynthesis:
    def test_point_profile_yields_cyclic_behaviour(self):
        """A pure point(W) profile synthesizes a trace that thrashes
        below W lines and hits above."""
        profile = ReuseProfile.point(64, 10.0)
        trace = synthesize_trace(profile, accesses=4000, seed=1)
        small = exact_miss_count(trace, 48 * 64)
        large = exact_miss_count(trace, 80 * 64)
        assert small > 0.9 * len(trace)
        assert large <= 65  # cold misses only

    def test_streaming_profile_never_reuses(self):
        profile = ReuseProfile.streaming(1.0)
        trace = synthesize_trace(profile, accesses=1000)
        assert len(np.unique(trace.addresses)) == 1000

    def test_round_trip_preserves_miss_curve(self):
        """profile -> trace -> profile is a fixed point (within noise)."""
        original = ReuseProfile.uniform(256, 5.0, points=64).combine(
            ReuseProfile.streaming(1.0)
        )
        trace = synthesize_trace(original, accesses=30000, seed=3)
        measured = empirical_profile(trace, instructions=int(30000 / 6 * 1000))
        for capacity in (64, 128, 192):
            assert measured.miss_ratio(capacity) == pytest.approx(
                original.miss_ratio(capacity), abs=0.06
            )

    def test_resynthesize_matches_source_behaviour(self):
        source = cyclic_scan(Region(0, 16 * KB), passes=6, stride=64)
        stretched = resynthesize(source, accesses=3 * len(source), seed=5)
        assert len(stretched) == 3 * len(source)
        # Same working-set knee: thrash below 256 lines; above the knee
        # the miss ratio tracks the source's own cold fraction (1/6).
        below = exact_miss_count(stretched, 128 * 64) / len(stretched)
        above = exact_miss_count(stretched, 512 * 64) / len(stretched)
        source_above = exact_miss_count(source, 512 * 64) / len(source)
        assert below > 0.8
        assert above == pytest.approx(source_above, abs=0.08)

    def test_rejects_empty_profile(self):
        with pytest.raises(TraceError):
            synthesize_trace(ReuseProfile.empty(), 10)

    def test_deterministic_by_seed(self):
        profile = ReuseProfile.uniform(128, 1.0)
        a = synthesize_trace(profile, 500, seed=9)
        b = synthesize_trace(profile, 500, seed=9)
        assert np.array_equal(a.addresses, b.addresses)
