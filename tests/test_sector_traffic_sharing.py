"""Tests for the sector cache, line-traffic study, and sharing study."""

import numpy as np
import pytest

from repro.cache.sector import SectorCache, SectorCacheConfig, monolithic_line_traffic
from repro.errors import ConfigurationError
from repro.harness import linesize_traffic, sharing_study
from repro.trace.generators import Region, cyclic_scan, sequential_scan, uniform_random
from repro.units import KB, PAPER_LINE_SWEEP


def small_sector(**overrides) -> SectorCache:
    defaults = dict(size=64 * KB, sector_size=1024, subblock_size=64, associativity=8)
    defaults.update(overrides)
    return SectorCache(SectorCacheConfig(**defaults))


class TestSectorCacheConfig:
    def test_rejects_subblock_bigger_than_sector(self):
        with pytest.raises(ConfigurationError):
            SectorCacheConfig(size=64 * KB, sector_size=128, subblock_size=256)

    def test_subblocks_per_sector(self):
        config = SectorCacheConfig(size=64 * KB, sector_size=1024, subblock_size=64)
        assert config.subblocks_per_sector == 16


class TestSectorCacheBehaviour:
    def test_first_touch_is_sector_miss(self):
        cache = small_sector()
        assert not cache.access(0x0)
        assert cache.stats.sector_misses == 1

    def test_same_subblock_hits(self):
        cache = small_sector()
        cache.access(0x0)
        assert cache.access(0x20)  # same 64B sub-block
        assert cache.stats.hits == 1

    def test_neighbour_subblock_is_subblock_miss(self):
        cache = small_sector()
        cache.access(0x0)
        assert not cache.access(0x40)  # same sector, next sub-block
        assert cache.stats.subblock_misses == 1
        assert cache.stats.sector_misses == 1

    def test_traffic_is_demand_only(self):
        """The whole point: bytes moved = sub-blocks touched.  A sparse
        scan (stride 256 within 1KB sectors) pays 64B per touch where a
        monolithic 1KB-line cache hauls whole kilobytes."""
        cache = small_sector()
        trace = sequential_scan(Region(0, 32 * KB), count=128, stride=256)
        cache.access_chunk(trace)
        assert cache.stats.bytes_transferred == 128 * 64
        assert cache.stats.sector_misses == 32  # one tag per 1KB sector
        monolithic = monolithic_line_traffic(cache.stats.sector_misses, 1024)
        assert monolithic == 32 * KB
        assert cache.stats.bytes_transferred < monolithic / 3

    def test_sector_tags_capture_spatial_locality(self):
        """A strided scan allocates far fewer sectors than sub-blocks."""
        cache = small_sector()
        trace = cyclic_scan(Region(0, 32 * KB), passes=2, stride=64)
        cache.access_chunk(trace)
        assert cache.stats.sector_misses <= 32 + 1
        # Second pass hits everything (32KB fits in 64KB).
        assert cache.stats.hits >= len(trace) // 2

    def test_eviction_invalidates_subblocks(self):
        """Re-touching an evicted sector must not claim stale sub-blocks."""
        cache = small_sector(size=2 * KB, sector_size=1024, associativity=1)
        # Two sectors mapping to the same set thrash each other.
        first, second = 0x0, 2 * KB
        cache.access(first)
        cache.access(second)
        cache.access(first)  # must be a sector miss again, not a hit
        assert cache.stats.hits == 0
        assert cache.stats.sector_misses == 3

    def test_random_traffic_consistency(self):
        cache = small_sector()
        trace = uniform_random(
            Region(0, 256 * KB), count=5000, granule=64, rng=np.random.default_rng(3)
        )
        stats = cache.access_chunk(trace)
        assert stats.hits + stats.misses == stats.accesses
        assert stats.bytes_transferred == stats.misses * 64


class TestLineTrafficStudy:
    def test_rows_cover_sweep(self):
        rows = linesize_traffic.generate()
        assert len(rows) == 8 * len(PAPER_LINE_SWEEP)

    def test_traffic_never_decreases_past_256(self):
        """MPKI gains beyond 256B cannot outpace the linear byte cost."""
        rows = linesize_traffic.generate()
        for name in ("MDS", "FIMI", "RSEARCH", "PLSA", "VIEWTYPE"):
            series = {
                r.line_size: r.traffic_bytes_per_kiloinst
                for r in rows
                if r.workload == name
            }
            assert series[512] >= series[256] - 1e-9

    def test_platform_pick_is_paper_sweet_spot(self):
        rows = linesize_traffic.generate()
        assert linesize_traffic.platform_line_size(rows) == 256

    def test_main_prints(self, capsys):
        linesize_traffic.main()
        output = capsys.readouterr().out
        assert "256B" in output


class TestSharingStudy:
    def test_taxonomy_measured_from_kernels(self):
        rows = sharing_study.generate(
            threads=2, workloads=("SNP", "FIMI", "SHOT", "VIEWTYPE")
        )
        by_name = {r.workload: r for r in rows}
        # Category A/B: the primary structure is shared.
        assert by_name["SNP"].shared_line_fraction > 0.5
        assert by_name["FIMI"].shared_line_fraction > 0.5
        # Category C: disjoint private footprints.
        assert by_name["SHOT"].shared_line_fraction == 0.0
        assert by_name["VIEWTYPE"].shared_line_fraction == 0.0

    def test_main_prints(self, capsys):
        sharing_study.main()
        output = capsys.readouterr().out
        assert "sharing behaviour" in output
