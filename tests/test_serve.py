"""The serving layer: queue semantics, batching, dedup, HTTP loop."""

from __future__ import annotations

import time

import pytest

from repro.errors import ServeError
from repro.serve.client import ServeClient
from repro.serve.jobspec import JobSpec, result_digest, run_batch
from repro.serve.queue import JobQueue
from repro.serve.server import JobServer

#: Tiny synthetic spec: fast to capture, fast to replay.
SPEC = {
    "workload": "FIMI",
    "cores": 2,
    "source": "synthetic",
    "accesses": 2048,
    "cache": [1024 * 1024],
}


def _spec(**overrides) -> dict:
    payload = dict(SPEC)
    payload.update(overrides)
    return payload


def _submit(queue: JobQueue, n: int, spec=None, **kwargs):
    jobs = []
    for index in range(n):
        fields = dict(mode="batch", priority=0)
        fields.update(kwargs)
        jobs.append(
            queue.submit(
                JobSpec.from_json(spec or SPEC),
                fields["mode"],
                fields["priority"],
                f"job-{index:03d}",
            )
        )
    return jobs


class TestQueue:
    def test_backpressure_rejects_with_429(self):
        queue = JobQueue(max_queue=2)
        _submit(queue, 2)
        with pytest.raises(ServeError) as excinfo:
            _submit(queue, 1)
        assert excinfo.value.status == 429
        assert queue.stats()["rejected_full"] == 1

    def test_draining_rejects_with_503(self):
        queue = JobQueue()
        queue.drain()
        with pytest.raises(ServeError) as excinfo:
            _submit(queue, 1)
        assert excinfo.value.status == 503

    def test_rejects_unknown_mode_and_priority(self):
        queue = JobQueue()
        spec = JobSpec.from_json(SPEC)
        with pytest.raises(ServeError, match="mode"):
            queue.submit(spec, "bulk", 0, "j")
        with pytest.raises(ServeError, match="priority"):
            queue.submit(spec, "batch", "high", "j")

    def test_priority_orders_the_schedule(self):
        queue = JobQueue()
        spec = JobSpec.from_json(SPEC)
        low = queue.submit(spec, "batch", 0, "low")
        interactive = queue.submit(spec, "interactive", 0, "inter")
        high = queue.submit(spec, "batch", 5, "high")
        batch = queue.take_batch()
        # Highest priority leads; equal-key jobs ride along anyway.
        assert batch.leader is high
        assert sorted(batch.jobs, key=lambda j: j.seq) == [low, interactive, high]

    def test_interactive_precedes_batch_at_equal_priority(self):
        queue = JobQueue()
        # Different captures: no coalescing, pure ordering.
        a = queue.submit(JobSpec.from_json(_spec(cores=2)), "batch", 0, "a")
        b = queue.submit(JobSpec.from_json(_spec(cores=4)), "interactive", 0, "b")
        assert queue.take_batch().leader is b
        assert queue.take_batch().leader is a

    def test_coalesces_only_matching_passes(self):
        queue = JobQueue()
        same1 = queue.submit(JobSpec.from_json(_spec(cache=[1024 * 1024])), "batch", 0, "s1")
        other = queue.submit(JobSpec.from_json(_spec(cores=4)), "batch", 0, "o")
        same2 = queue.submit(
            JobSpec.from_json(_spec(cache=[4 * 1024 * 1024])), "batch", 0, "s2"
        )
        first = queue.take_batch()
        assert sorted(first.jobs, key=lambda j: j.seq) == [same1, same2]
        assert first.leader is same1
        assert all(job.coalesced for job in first.jobs)
        second = queue.take_batch()
        assert second.jobs == (other,)
        assert not other.coalesced

    def test_max_batch_caps_riders(self):
        queue = JobQueue(max_batch=2)
        jobs = [
            queue.submit(
                JobSpec.from_json(_spec(cache=[(1 << i) * 1024 * 1024])),
                "batch",
                0,
                f"j{i}",
            )
            for i in range(4)
        ]
        assert queue.take_batch().jobs == (jobs[0], jobs[1])
        assert queue.take_batch().jobs == (jobs[2], jobs[3])

    def test_no_batching_degrades_to_singletons(self):
        queue = JobQueue()
        jobs = _submit(queue, 3)
        for expected in jobs:
            batch = queue.take_batch(batching=False)
            assert batch.jobs == (expected,)
        assert queue.stats()["coalesced_riders"] == 0

    def test_zero_inversions_by_construction(self):
        queue = JobQueue()
        for index in range(8):
            queue.submit(
                JobSpec.from_json(_spec(cores=2 + (index % 3))),
                "interactive" if index % 2 else "batch",
                index % 4,
                f"j{index}",
            )
        while queue.take_batch(timeout=0.0) is not None:
            pass
        assert queue.inversions == 0

    def test_stop_cancels_pending(self):
        queue = JobQueue()
        (job,) = _submit(queue, 1)
        queue.stop()
        assert job.state == "cancelled"
        assert job.done_event.is_set()
        assert queue.take_batch() is None


@pytest.fixture
def server():
    instance = JobServer(max_queue=16, max_batch=8)
    instance.start_worker()
    yield instance
    instance.shutdown()


class TestServer:
    def test_served_result_matches_the_cli_path(self, server):
        response, status = server.submit({"spec": SPEC, "mode": "interactive"})
        assert status == 202
        job = server.get_job(response["job_id"], wait=120)
        assert job.state == "done"
        # Byte-identity: the served digest equals the digest of the
        # same spec run straight through the replay engine (what
        # ``repro-cosim --digest`` prints).
        assert job.digest == result_digest(JobSpec.from_json(SPEC).run())
        assert job.summary["configs"][0]["mpki"] > 0

    def test_duplicate_submission_is_answered_from_the_store(self, server):
        first, _ = server.submit({"spec": SPEC})
        server.get_job(first["job_id"], wait=120)
        second, status = server.submit({"spec": SPEC})
        assert status == 200
        assert second["state"] == "done"
        assert second["outcome"] == "deduplicated"
        assert second["digest"] == server.get_job(first["job_id"]).digest
        assert server.counts["deduplicated"] == 1

    def test_invalid_specs_bounce_with_400(self, server):
        with pytest.raises(ServeError) as excinfo:
            server.submit({"spec": {"workload": "FIMI", "cache_szie": [1]}})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            server.submit({"spec": SPEC, "extra": 1})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            server.submit([1, 2])
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, server):
        with pytest.raises(ServeError) as excinfo:
            server.get_job("job-999999")
        assert excinfo.value.status == 404

    def test_batch_results_equal_solo_runs(self):
        # The engine-level guarantee the server's coalescing rests on.
        a = JobSpec.from_json(_spec(cache=[1024 * 1024]))
        b = JobSpec.from_json(_spec(cache=[4 * 1024 * 1024, 1024 * 1024]))
        batched = run_batch([a, b])
        assert result_digest(batched[0]) == result_digest(a.run())
        assert result_digest(batched[1]) == result_digest(b.run())

    def test_drain_finishes_pending_work(self, server):
        response, _ = server.submit({"spec": SPEC})
        server.queue.drain()
        assert server.drain(wait=True, timeout=120)
        job = server.get_job(response["job_id"])
        assert job.state == "done"
        with pytest.raises(ServeError) as excinfo:
            server.submit({"spec": _spec(cores=4)})
        assert excinfo.value.status == 503

    def test_capture_warm_batches_are_counted(self, tmp_path):
        from repro.trace.cache import TraceCache

        instance = JobServer(trace_cache=TraceCache(tmp_path / "cache"))
        instance.start_worker()
        try:
            first, _ = instance.submit({"spec": SPEC})
            instance.get_job(first["job_id"], wait=120)
            # Different geometry, same capture: answered from the cached
            # trace without re-capture.
            warm, _ = instance.submit({"spec": _spec(cache=[4 * 1024 * 1024])})
            job = instance.get_job(warm["job_id"], wait=120)
            assert job.state == "done"
            assert job.capture_warm
            assert instance.counts["capture_warm_batches"] >= 1
        finally:
            instance.shutdown()


class TestHTTP:
    @pytest.fixture
    def client(self, server):
        host, port = server.start_http("127.0.0.1", 0)
        client = ServeClient(host, port)
        client.wait_ready()
        return client

    def test_end_to_end_over_http(self, client):
        response = client.submit(SPEC, mode="interactive", priority=2)
        job = client.wait(response["job_id"], timeout=120)
        assert job["state"] == "done"
        assert job["outcome"] == "completed"
        assert job["digest"] == result_digest(JobSpec.from_json(SPEC).run())
        windows = client.windows(response["job_id"])
        assert windows["configs"][0]["windows"]
        assert client.healthz()["status"] == "ok"
        stats = client.stats()
        assert stats["completed"] >= 1
        assert stats["priority_inversions"] == 0

    def test_http_errors_carry_the_server_status(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit({"workload": "NOPE"})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.job("job-424242")
        assert excinfo.value.status == 404

    def test_drain_endpoint_stops_admission(self, client):
        assert client.drain()["draining"] is True
        deadline = time.monotonic() + 5
        while not client.healthz()["draining"]:
            assert time.monotonic() < deadline
            time.sleep(0.02)
        with pytest.raises(ServeError) as excinfo:
            client.submit(SPEC)
        assert excinfo.value.status == 503
