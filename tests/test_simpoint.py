"""Tests for the sampled-simulation engine (``repro.simpoint``).

The load-bearing guarantees: degenerate sampling is bit-identical to
the exact replay path, seeded runs are deterministic, the fingerprint
pass round-trips through the trace cache, and the interval/cluster
helpers keep their units straight.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, SamplingError
from repro.harness.replay import capture_replay_log, log_cache_key, replay
from repro.cache.emulator import DragonheadConfig
from repro.simpoint import (
    MetricEstimate,
    SampleSpec,
    cluster_intervals,
    interval_bounds,
    parse_sample_spec,
    sampled_sweep,
    slice_progress,
)
from repro.simpoint.fingerprint import (
    COLD_BUCKETS,
    _associative_hit_curve,
    cold_start_hit_ratio,
    cold_start_uncertainty,
    fingerprint_intervals,
)
from repro.simpoint.intervals import interval_instructions
from repro.trace.cache import TraceCache
from repro.units import MB
from repro.workloads.registry import get_workload

CONFIG = DragonheadConfig(cache_size=1 * MB)


def _capture(accesses_per_thread=4096, cores=2, repeats=1):
    guest = get_workload("FIMI").synthetic_guest(
        accesses_per_thread=accesses_per_thread, repeats=repeats
    )
    return capture_replay_log(guest, cores)


class TestIntervals:
    def test_interval_bounds_units(self):
        assert interval_bounds(10, 4).tolist() == [0, 4, 8, 10]
        assert interval_bounds(8, 4).tolist() == [0, 4, 8]
        assert interval_bounds(3, 4).tolist() == [0, 3]

    def test_interval_bounds_rejects_bad_input(self):
        with pytest.raises(SamplingError):
            interval_bounds(10, 0)
        with pytest.raises(SamplingError):
            interval_bounds(0, 4)

    def test_slice_progress_degenerate_returns_table_unchanged(self):
        table = np.array([[0, 5, 7], [4, 10, 20], [9, 30, 40]], dtype=np.int64)
        sliced = slice_progress(table, 0, 9)
        assert sliced.tolist() == table.tolist()

    def test_slice_progress_rebases_offsets_and_counters(self):
        table = np.array([[0, 5, 7], [4, 10, 20], [9, 30, 40]], dtype=np.int64)
        sliced = slice_progress(table, 4, 9)
        # The offset-4 row belongs to the previous interval (it arrived
        # before access 4 ran); only the offset-9 row lands inside, and
        # both counters rebase to the step value at the interval start.
        assert sliced.tolist() == [[5, 20, 20]]

    def test_interval_instructions_sum_to_total(self):
        log = _capture()
        bounds = interval_bounds(log.accesses, 1024)
        per_interval = interval_instructions(
            log.progress_table(), bounds, log.instructions
        )
        assert len(per_interval) == len(bounds) - 1
        assert int(per_interval.sum()) == log.instructions


class TestSampleSpec:
    def test_parse_plain_and_suffixed(self):
        assert parse_sample_spec("4096") == SampleSpec(interval=4096)
        assert parse_sample_spec("64k,6") == SampleSpec(interval=65536, max_k=6)
        assert parse_sample_spec("1m") == SampleSpec(interval=1024 * 1024)

    @pytest.mark.parametrize("text", ["", "x", "64q", "64k,x", "1,2,3"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(SamplingError):
            parse_sample_spec(text)

    def test_spec_rejects_nonpositive_knobs(self):
        with pytest.raises(SamplingError):
            SampleSpec(interval=0)
        with pytest.raises(SamplingError):
            SampleSpec(interval=4096, max_k=0)

    def test_resolved_warmup_caps_at_interval(self):
        assert SampleSpec(interval=1024).resolved_warmup() == 1024
        assert SampleSpec(interval=65536).resolved_warmup() == 8192
        assert SampleSpec(interval=1024, warmup=16).resolved_warmup() == 16

    def test_metric_estimate_brackets_and_format(self):
        estimate = MetricEstimate(2.0, 0.5)
        assert estimate.brackets(2.4) and estimate.brackets(1.5)
        assert not estimate.brackets(2.6)
        assert f"{estimate:.2f}" == "2.00±0.50"


class TestClustering:
    def test_two_obvious_clusters_found_deterministically(self):
        rng = np.random.default_rng(7)
        features = np.vstack(
            [rng.normal(0.0, 0.01, (12, 3)), rng.normal(1.0, 0.01, (12, 3))]
        )
        first = cluster_intervals(features, max_k=6, seed=0)
        second = cluster_intervals(features, max_k=6, seed=0)
        assert first.k == 2
        assert first.labels.tolist() == second.labels.tolist()
        assert first.representatives == second.representatives
        assert len(set(first.labels[:12])) == 1
        assert len(set(first.labels[12:])) == 1

    def test_identical_features_collapse_to_one_cluster(self):
        features = np.ones((8, 4))
        clustering = cluster_intervals(features, max_k=4, seed=0)
        assert clustering.k == 1
        assert clustering.labels.tolist() == [0] * 8


class TestColdStartModel:
    def test_hit_curve_is_monotone_and_cold_misses(self):
        curve = _associative_hit_curve(capacity_lines=4096, associativity=16)
        assert len(curve) == 1 + COLD_BUCKETS
        assert curve[0] == 0.0  # a never-seen line cannot hit
        body = curve[1:]
        assert np.all(body >= 0.0) and np.all(body <= 1.0)
        # Monotone up to the ~1e-5 numeric noise of the log-space
        # binomial CDF (lgamma cancellation near probability 1).
        assert np.all(np.diff(body) <= 1e-4)
        assert body[0] > 0.99  # distance ~1 always fits

    def test_uncertainty_never_exceeds_correction_mass(self):
        log = _capture()
        bounds = interval_bounds(log.accesses, 1024)
        prints = fingerprint_intervals(
            log.to_chunk(), bounds, log.cores, warmup=512
        )
        capacity = CONFIG.cache_size // prints.line_size
        ratio = cold_start_hit_ratio(prints, capacity, CONFIG.associativity)
        uncertainty = cold_start_uncertainty(
            prints, capacity, CONFIG.associativity
        )
        assert np.all(ratio >= 0.0) and np.all(ratio <= 1.0)
        # Both are the same cold-mass average, of min(p, 1-p) and of p:
        # the model-error band can never exceed the correction itself.
        assert np.all(uncertainty <= ratio + 1e-12)


class TestSampledSweep:
    def test_degenerate_interval_is_bit_identical_to_exact(self):
        log = _capture()
        exact = replay(log, CONFIG)
        [sampled] = sampled_sweep(
            log, [CONFIG], SampleSpec(interval=log.accesses)
        )
        assert sampled.sampled is True
        assert sampled.coverage.intervals == 1
        assert sampled.misses == MetricEstimate(float(exact.llc_stats.misses), 0.0)
        assert sampled.mpki == MetricEstimate(exact.mpki, 0.0)
        assert sampled.instructions == exact.instructions
        assert sampled.accesses == exact.accesses
        assert sampled.filtered == exact.filtered
        inner = sampled.representative_results[0]
        assert inner.performance == exact.performance
        assert inner.llc_stats == exact.llc_stats
        assert inner.instructions == exact.instructions
        assert inner.accesses == exact.accesses
        assert inner.filtered == exact.filtered
        assert inner.degradation == exact.degradation

    def test_seeded_runs_are_deterministic(self):
        log = _capture()
        spec = SampleSpec(interval=1024, max_k=4)
        first = sampled_sweep(log, [CONFIG], spec)[0]
        second = sampled_sweep(log, [CONFIG], spec)[0]
        assert first.coverage.labels == second.coverage.labels
        assert first.coverage.representatives == second.coverage.representatives
        assert first.mpki == second.mpki
        assert first.misses == second.misses
        assert first.miss_ratio == second.miss_ratio

    def test_estimates_land_near_exact_with_honest_bars(self):
        log = _capture(accesses_per_thread=8192)
        exact = replay(log, CONFIG)
        [sampled] = sampled_sweep(log, [CONFIG], SampleSpec(interval=2048))
        assert sampled.coverage.intervals > 1
        assert 0.0 < sampled.coverage.simulated_fraction <= 1.0
        assert sampled.mpki.brackets(exact.mpki)

    def test_fingerprints_round_trip_through_trace_cache(self, tmp_path):
        cache = TraceCache(tmp_path)
        log = _capture()
        key = log_cache_key("FIMI", log.cores, 4096, 8192, {"source": "synthetic"})
        spec = SampleSpec(interval=1024, max_k=4)
        cold = sampled_sweep(log, [CONFIG], spec, trace_cache=cache, log_key=key)
        warm = sampled_sweep(log, [CONFIG], spec, trace_cache=cache, log_key=key)
        assert cold[0].coverage.fingerprint_cached is False
        assert warm[0].coverage.fingerprint_cached is True
        assert warm[0].mpki == cold[0].mpki
        assert warm[0].coverage.labels == cold[0].coverage.labels


class TestLongStreamKnob:
    def test_repeats_scale_the_stream(self):
        single = _capture(accesses_per_thread=2048, repeats=1)
        double = _capture(accesses_per_thread=2048, repeats=2)
        assert double.accesses == 2 * single.accesses

    def test_repeats_must_be_positive(self):
        workload = get_workload("FIMI")
        with pytest.raises(ConfigurationError):
            workload.synthetic_guest(repeats=0)
        with pytest.raises(ConfigurationError):
            workload.kernel_guest(repeats=-1)


class TestCLIIntegration:
    def test_sample_conflicts_with_phases(self):
        from repro.harness.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(
                ["--workload", "FIMI", "--sample", "4096", "--phases"]
            )
        assert excinfo.value.code == 2

    def test_runall_accepts_sample_flag(self, capsys):
        from repro.harness import runall

        assert runall.main(["--sample", "1m"]) == 0
        assert "Table 1" in capsys.readouterr().out
