"""Tests for the fault-tolerant sweep supervisor.

The contract under test: fault-free supervised runs return exactly what
``parallel_map`` returns; under faults — worker crashes, hangs, flaky
exceptions, SIGINT — the supervisor retries with backoff, respawns the
pool, journals completed points for ``--resume``, and either degrades
gracefully or fails loudly with the offending grid point attached.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.errors import ConfigurationError, SweepInterrupted, SweepPointError
from repro.faults.spec import FaultSpec
from repro.harness.parallel import parallel_map
from repro.harness.supervisor import (
    JOURNAL_FORMAT,
    SupervisorContext,
    SupervisorPolicy,
    SweepJournal,
    supervise,
    supervised_map,
)


# -- module-level tasks (they cross process boundaries) -----------------


def square(item):
    return item * item


def flaky_crash(item):
    """Dies hard (kills its worker) until a marker file exists."""
    value, marker_dir = item
    marker = os.path.join(marker_dir, f"crash-{value}")
    if not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(9)
    return value * 10


def flaky_raise(item):
    """Raises until a marker file exists."""
    value, marker_dir = item
    marker = os.path.join(marker_dir, f"raise-{value}")
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise ValueError(f"transient failure at {value}")
    return value + 1


def hang_once(item):
    """Stalls one specific point on its first attempt only."""
    value, marker_dir = item
    marker = os.path.join(marker_dir, f"hang-{value}")
    if value == 2 and not os.path.exists(marker):
        open(marker, "w").close()
        time.sleep(60)
    return value + 100


def always_fails(item):
    raise RuntimeError(f"point {item} is broken")


def dict_total(item):
    return sum(item.values())


def interrupts(item):
    if item == 1:
        raise KeyboardInterrupt
    return item


class TestFaultFreeParity:
    def test_matches_parallel_map_serial_and_pooled(self):
        items = list(range(8))
        expected = parallel_map(square, items)
        assert supervised_map(square, items, jobs=None) == expected
        assert supervised_map(square, items, jobs=3) == expected

    def test_parallel_map_delegates_under_supervise(self):
        with supervise() as context:
            assert parallel_map(square, [1, 2, 3], jobs=2) == [1, 4, 9]
        assert context.completed == 3

    def test_empty_items(self):
        assert supervised_map(square, [], jobs=4) == []


class TestRetries:
    def test_transient_exception_is_retried(self, tmp_path):
        context = SupervisorContext(
            policy=SupervisorPolicy(retries=2, backoff_base=0.01)
        )
        items = [(i, str(tmp_path)) for i in range(4)]
        assert supervised_map(flaky_raise, items, jobs=2, context=context) == [
            1,
            2,
            3,
            4,
        ]
        assert context.counts["point-retry"] == 4

    def test_exhausted_point_raises_sweep_point_error(self):
        context = SupervisorContext(
            policy=SupervisorPolicy(retries=1, backoff_base=0.01)
        )
        with pytest.raises(SweepPointError) as info:
            supervised_map(always_fails, [7], jobs=2, context=context)
        assert info.value.point == 7
        assert info.value.attempts == 2
        assert isinstance(info.value.cause, RuntimeError)

    def test_exhausted_point_degrades_when_policy_allows(self):
        context = SupervisorContext(
            policy=SupervisorPolicy(
                retries=0, backoff_base=0.01, failure_value=None
            )
        )
        out = supervised_map(always_fails, [1, 2], jobs=2, context=context)
        assert out == [None, None]
        assert context.counts["point-degraded"] == 2


class TestCrashRecovery:
    def test_broken_pool_respawns_and_completes(self, tmp_path):
        context = SupervisorContext(
            policy=SupervisorPolicy(retries=2, backoff_base=0.01)
        )
        items = [(i, str(tmp_path)) for i in (1, 2, 3)]
        out = supervised_map(flaky_crash, items, jobs=2, context=context)
        assert out == [10, 20, 30]
        assert context.counts["pool-respawn"] >= 1
        assert context.counts["worker-crash"] >= 1

    def test_injected_crash_first_attempt_only(self):
        spec = FaultSpec(seed=5, crash=1.0)
        context = SupervisorContext(
            policy=SupervisorPolicy(retries=1, backoff_base=0.01), fault_spec=spec
        )
        assert supervised_map(square, [2, 3], jobs=2, context=context) == [4, 9]
        assert context.counts["worker-crash-injected"] == 2

    def test_injected_crash_serial_degenerates_to_retry(self):
        spec = FaultSpec(seed=5, crash=1.0)
        context = SupervisorContext(
            policy=SupervisorPolicy(retries=1, backoff_base=0.01), fault_spec=spec
        )
        assert supervised_map(square, [2, 3], jobs=None, context=context) == [4, 9]


class TestTimeouts:
    def test_hung_point_is_killed_and_retried(self, tmp_path):
        context = SupervisorContext(
            policy=SupervisorPolicy(timeout=1.0, retries=2, backoff_base=0.01)
        )
        items = [(i, str(tmp_path)) for i in (1, 2, 3)]
        start = time.monotonic()
        out = supervised_map(hang_once, items, jobs=2, context=context)
        elapsed = time.monotonic() - start
        assert out == [101, 102, 103]
        assert context.counts["point-timeout"] == 1
        assert elapsed < 30  # nowhere near the 60 s sleep


class TestJournalResume:
    def test_completed_points_are_skipped_on_resume(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            context = SupervisorContext(journal=journal)
            first = supervised_map(square, [1, 2, 3], jobs=None, context=context)
        with SweepJournal(path, resume=True) as journal:
            context = SupervisorContext(journal=journal)
            second = supervised_map(square, [1, 2, 3], jobs=None, context=context)
        assert first == second
        assert context.counts["journal-skip"] == 3

    def test_partial_journal_reruns_only_missing_points(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            context = SupervisorContext(journal=journal)
            supervised_map(square, [1, 2], jobs=None, context=context)
        with SweepJournal(path, resume=True) as journal:
            context = SupervisorContext(journal=journal)
            out = supervised_map(square, [1, 2, 3, 4], jobs=None, context=context)
        assert out == [1, 4, 9, 16]
        assert context.counts["journal-skip"] == 2

    def test_torn_tail_line_is_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            context = SupervisorContext(journal=journal)
            supervised_map(square, [1, 2, 3], jobs=None, context=context)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "deadbeef", "result": "truncat')  # no newline
        with SweepJournal(path, resume=True) as journal:
            context = SupervisorContext(journal=journal)
            out = supervised_map(square, [1, 2, 3], jobs=None, context=context)
        assert out == [1, 4, 9]
        assert context.counts["journal-skip"] == 3

    def test_point_key_depends_on_task_and_item(self):
        assert SweepJournal.point_key(square, 1) == SweepJournal.point_key(square, 1)
        assert SweepJournal.point_key(square, 1) != SweepJournal.point_key(square, 2)
        assert SweepJournal.point_key(square, 1) != SweepJournal.point_key(
            always_fails, 1
        )

    def test_point_key_ignores_container_ordering(self):
        """Pickle serializes dicts/sets in iteration order; the key must
        not — equal grid points get equal keys however they were built."""
        assert SweepJournal.point_key(square, {"a": 1, "b": 2}) == (
            SweepJournal.point_key(square, {"b": 2, "a": 1})
        )
        assert SweepJournal.point_key(square, {"a": 1, "b": 2}) != (
            SweepJournal.point_key(square, {"a": 2, "b": 1})
        )
        nested = {"geometry": {"size": 1, "lines": 64}, "flags": ["x"]}
        reordered = {"flags": ["x"], "geometry": {"lines": 64, "size": 1}}
        assert SweepJournal.point_key(square, nested) == (
            SweepJournal.point_key(square, reordered)
        )
        assert SweepJournal.point_key(square, {3, 1, 2}) == (
            SweepJournal.point_key(square, {2, 3, 1})
        )
        # A set is not the tuple of its members.
        assert SweepJournal.point_key(square, {1, 2}) != (
            SweepJournal.point_key(square, (1, 2))
        )

    def test_resume_skips_reordered_dict_points(self, tmp_path):
        """--resume must not re-run a completed point whose dict item
        was rebuilt with a different insertion order."""
        path = tmp_path / "journal.jsonl"
        first_grid = [{"a": 1, "b": 2}, {"b": 30, "a": 10}]
        with SweepJournal(path) as journal:
            context = SupervisorContext(journal=journal)
            first = supervised_map(dict_total, first_grid, jobs=None, context=context)
        reordered_grid = [{"b": 2, "a": 1}, {"a": 10, "b": 30}]
        with SweepJournal(path, resume=True) as journal:
            context = SupervisorContext(journal=journal)
            second = supervised_map(
                dict_total, reordered_grid, jobs=None, context=context
            )
        assert first == second == [3, 40]
        assert context.counts["journal-skip"] == 2


class TestInterrupt:
    def test_sigint_drains_to_sweep_interrupted(self, capsys):
        context = SupervisorContext(policy=SupervisorPolicy(backoff_base=0.01))
        with pytest.raises(SweepInterrupted):
            supervised_map(interrupts, [0, 1, 2], jobs=None, context=context)
        assert "sweep interrupted" in capsys.readouterr().err

    def test_sigint_in_worker_drains_pool(self, capsys):
        context = SupervisorContext(policy=SupervisorPolicy(backoff_base=0.01))
        with pytest.raises(SweepInterrupted):
            supervised_map(interrupts, [0, 1, 2], jobs=2, context=context)
        assert "sweep interrupted" in capsys.readouterr().err


class TestJournalDurability:
    def test_every_append_is_fsynced(self, tmp_path, monkeypatch):
        """A point counts as journaled only once the bytes hit the
        platter — record() must fsync, not merely flush."""
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd))
        with SweepJournal(tmp_path / "journal.jsonl") as journal:
            before = len(synced)
            journal.record("k1", 42)
            assert len(synced) == before + 1
            assert synced[-1] == journal._handle.fileno()

    def test_mid_record_kill_loses_only_the_torn_point(self, tmp_path):
        """SIGKILL delivered mid-``write(2)``: the journal keeps every
        record appended before the kill and drops only the torn tail.

        A child process journals two points, starts a third record but
        is killed after only part of its line reaches the file, exactly
        what a power cut or OOM kill leaves behind.
        """
        import signal
        import subprocess
        import sys
        import textwrap

        path = tmp_path / "journal.jsonl"
        script = textwrap.dedent(
            f"""
            import os, signal
            from repro.harness.supervisor import SweepJournal
            journal = SweepJournal({str(path)!r})
            journal.record(SweepJournal.point_key(abs, 1), 1)
            journal.record(SweepJournal.point_key(abs, 2), 4)
            # Begin a third record but die with only half its bytes
            # written (bypassing record(), whose write is atomic from
            # Python's side — the torn state is what the *kernel* has).
            journal._handle.write('{{"schema": 3, "key": "half-a-rec')
            journal._handle.flush()
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        proc = subprocess.run([sys.executable, "-c", script], env=env)
        assert proc.returncode == -signal.SIGKILL
        with SweepJournal(path, resume=True) as journal:
            assert journal.entries == {
                SweepJournal.point_key(abs, 1): 1,
                SweepJournal.point_key(abs, 2): 4,
            }


class TestTerminateFallback:
    def test_pool_processes_reads_a_real_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        from repro.harness.executors.local import pool_processes

        with ProcessPoolExecutor(max_workers=1) as pool:
            pool.submit(square, 2).result()
            assert all(p.is_alive() for p in pool_processes(pool))

    def test_pool_processes_guards_missing_private_attribute(self):
        """CPython renaming ``_processes`` must degrade the helper to
        an empty list, never an AttributeError in the drain path."""
        from repro.harness.executors.local import pool_processes

        class NoProcesses:
            pass

        class NoneProcesses:
            _processes = None

        class HostileProcesses:
            class _processes:  # .values() raises like a retyped attr
                @staticmethod
                def values():
                    raise TypeError("not a mapping anymore")

        assert pool_processes(NoProcesses()) == []
        assert pool_processes(NoneProcesses()) == []
        assert pool_processes(HostileProcesses()) == []

    def test_terminate_falls_back_to_plain_shutdown(self):
        """With no enumerable workers, _terminate still shuts the pool
        down instead of crashing — the documented fallback."""
        from repro.harness.supervisor import _terminate

        calls = []

        class ShutdownOnly:
            def shutdown(self, wait, cancel_futures):
                calls.append((wait, cancel_futures))

        _terminate(ShutdownOnly())
        assert calls == [(False, True)]


class TestReapHung:
    def test_reaps_expired_flights_and_requeues_survivors(self):
        """Direct exercise of ``_reap_hung``: the expired flight is
        charged a timeout failure, the innocent one re-queued free, and
        the pool respawned exactly once."""
        from repro.harness.supervisor import _Flight, _reap_hung

        class StuckFuture:
            def done(self):
                return False

        context = SupervisorContext(policy=SupervisorPolicy(timeout=0.5))
        hung, innocent = StuckFuture(), StuckFuture()
        now = time.monotonic()
        inflight = {
            hung: _Flight(index=0, deadline=now - 1.0),
            innocent: _Flight(index=1, deadline=now + 60.0),
        }
        requeued, failed, respawns = [], [], []
        _reap_hung(
            context,
            context.policy,
            inflight,
            lambda index: requeued.append(index),
            lambda index, cause, kind: failed.append((index, kind, str(cause))),
            lambda: respawns.append(True),
        )
        assert inflight == {}
        assert respawns == [True]
        assert requeued == [1]
        assert len(failed) == 1
        index, kind, message = failed[0]
        assert (index, kind) == (0, "point-timeout")
        assert "0.5s wall-clock budget" in message

    def test_no_deadline_means_no_reaping(self):
        from repro.harness.supervisor import _Flight, _reap_hung

        class StuckFuture:
            def done(self):
                return False

        context = SupervisorContext()
        inflight = {StuckFuture(): _Flight(index=0, deadline=None)}
        boom = lambda *a: pytest.fail("nothing should be reaped")  # noqa: E731
        _reap_hung(context, context.policy, inflight, boom, boom, boom)
        assert len(inflight) == 1


class TestJournalV3:
    """The v3 schema: per-entry wall_time_s and attempts cost metadata."""

    def test_entries_carry_wall_time_and_attempts(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            context = SupervisorContext(journal=journal)
            supervised_map(square, [1, 2], jobs=None, context=context)
        rows = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert rows[0] == {"format": JOURNAL_FORMAT}
        for row in rows[1:]:
            assert row["schema"] == JOURNAL_FORMAT
            assert row["attempts"] == 1
            assert isinstance(row["wall_time_s"], float)
            assert row["wall_time_s"] >= 0.0

    def test_retried_point_records_its_attempt_count(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            context = SupervisorContext(
                policy=SupervisorPolicy(retries=2, backoff_base=0.01),
                journal=journal,
            )
            supervised_map(flaky_raise, [(5, str(tmp_path))], jobs=None, context=context)
        rows = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert rows[-1]["attempts"] == 2  # one failure, then success

    def test_resume_loads_cost_metadata(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            context = SupervisorContext(journal=journal)
            supervised_map(square, [1, 2, 3], jobs=None, context=context)
        with SweepJournal(path, resume=True) as journal:
            assert len(journal.meta) == 3
            for meta in journal.meta.values():
                assert meta["attempts"] == 1
                assert meta["wall_time_s"] >= 0.0

    def test_v2_journal_is_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"format": 2}\n', encoding="utf-8")
        with pytest.raises(ConfigurationError, match="schema 2"):
            SweepJournal(path, resume=True)
