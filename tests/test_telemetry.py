"""Tests for the telemetry subsystem (registry, spans, sinks, windows).

Two contracts dominate.  First, *observation changes nothing*: with
telemetry off the platform's outputs are byte-identical to a build
without the subsystem (the differential tests compare full
``CoSimResult`` trees, which are frozen dataclasses, so ``==`` covers
every counter and window sample), and even with telemetry *on* the
results are unchanged — only observed.  Second, *the mirrors are
exact*: the live 500 µs window stream must reproduce the sampler's own
accumulators sample-for-sample, the JSONL log must replay into an
identical registry, and the profile must reconcile against the result
aggregates it claims to summarize.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.cache.emulator import DragonheadConfig
from repro.core.cosim import CoSimPlatform
from repro.errors import TelemetryError
from repro.faults.report import DegradationRecord, merge_records
from repro.harness import cli
from repro.harness.replay import capture_replay_log, replay
from repro.telemetry import profile as profiling
from repro.telemetry import runtime as telemetry
from repro.telemetry.registry import DEFAULT_BUCKETS, MetricRegistry
from repro.telemetry.sinks import (
    JsonlSink,
    parse_prometheus,
    read_events,
    render_prometheus,
    replay_events_into,
    snapshot_events,
    write_prometheus,
)
from repro.units import MB
from repro.workloads.registry import get_workload


@pytest.fixture(autouse=True)
def _telemetry_off_after():
    """Every test leaves the process-wide switch the way it found it: off."""
    yield
    telemetry.configure(enabled=False)


def small_run(cache_size=4 * MB, line_size=64):
    config = DragonheadConfig(cache_size=cache_size, line_size=line_size)
    guest = get_workload("FIMI").kernel_guest()
    return CoSimPlatform(config).run(guest, cores=2)


# -- the registry -------------------------------------------------------


class TestRegistry:
    def test_counter_gauge_histogram_round_trip(self):
        registry = MetricRegistry()
        registry.counter("c", kind="a").inc()
        registry.counter("c", kind="a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.3)
        assert registry.value("c", kind="a") == 3
        assert registry.value("g") == 1.5
        assert len(registry) == 3

    def test_type_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("metric")
        with pytest.raises(TelemetryError, match="metric"):
            registry.gauge("metric")

    def test_negative_counter_increment_raises(self):
        registry = MetricRegistry()
        with pytest.raises(TelemetryError):
            registry.counter("c").inc(-1)

    def test_histogram_bucket_edges_are_le_inclusive(self):
        registry = MetricRegistry()
        hist = registry.histogram("h", buckets=(0.1, 1.0, 10.0))
        hist.observe(0.1)  # exactly on an edge: belongs to le=0.1
        hist.observe(1.0)
        hist.observe(5.0)
        hist.observe(999.0)  # beyond the last edge: +Inf only
        cumulative = dict(hist.cumulative())
        assert cumulative[0.1] == 1
        assert cumulative[1.0] == 2
        assert cumulative[10.0] == 3
        assert cumulative[float("inf")] == 4

    def test_default_buckets_are_sorted_and_positive(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert all(edge > 0 for edge in DEFAULT_BUCKETS)


# -- sinks: JSONL round trip and Prometheus exposition ------------------


class TestSinks:
    def _populated_registry(self) -> MetricRegistry:
        registry = MetricRegistry()
        registry.counter("repro_demo_total", kind="hits").inc(7)
        registry.counter("repro_demo_total", kind="misses").inc(3)
        registry.gauge("repro_demo_gauge", series="4MB/64B").set(2.25)
        hist = registry.histogram("repro_demo_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(50.0)
        return registry

    def test_jsonl_round_trip_reproduces_the_registry(self, tmp_path):
        source = self._populated_registry()
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            for event in snapshot_events(source):
                sink.emit(event)
        rebuilt = MetricRegistry()
        replay_events_into(rebuilt, read_events(path))
        assert render_prometheus(rebuilt) == render_prometheus(source)

    def test_torn_tail_event_is_tolerated(self, tmp_path):
        source = self._populated_registry()
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            for event in snapshot_events(source):
                sink.emit(event)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "metric", "name": "torn')  # crash mid-line
        events = list(read_events(path))
        assert all("torn" not in json.dumps(e) for e in events)

    def test_prometheus_exposition_parses_back(self, tmp_path):
        source = self._populated_registry()
        path = tmp_path / "metrics.prom"
        write_prometheus(source, path)
        samples = parse_prometheus(path.read_text(encoding="utf-8"))
        assert samples['repro_demo_total{kind="hits"}'] == 7
        assert samples['repro_demo_gauge{series="4MB/64B"}'] == 2.25
        # Histogram: cumulative buckets, then _sum and _count (the
        # renderer collapses integral floats, so the edge 1.0 is "1").
        assert samples['repro_demo_seconds_bucket{le="0.1"}'] == 1
        assert samples['repro_demo_seconds_bucket{le="1"}'] == 2
        assert samples['repro_demo_seconds_bucket{le="+Inf"}'] == 3
        assert samples["repro_demo_seconds_count"] == 3
        assert samples["repro_demo_seconds_sum"] == pytest.approx(50.55)


# -- observation changes nothing ----------------------------------------


class TestByteIdentity:
    def test_cosim_results_identical_with_telemetry_on_and_off(self):
        baseline = small_run()  # telemetry never configured
        with telemetry.session():
            observed = small_run()
        telemetry.configure(enabled=False)
        after = small_run()  # telemetry explicitly off
        assert observed == baseline
        assert after == baseline

    def test_replay_results_identical_with_telemetry_on_and_off(self):
        guest = get_workload("FIMI").kernel_guest()
        config = DragonheadConfig(cache_size=1 * MB)
        log = capture_replay_log(guest, cores=2)
        baseline = replay(log, config)
        with telemetry.session():
            observed = replay(log, config)
        assert observed == baseline

    def test_disabled_path_overhead_is_negligible(self):
        # CI-safe guard, not a microbenchmark: the disabled fast path is
        # one None check plus a no-op method, so even a very generous
        # bound catches an accidental allocation or lock on the path.
        iterations = 50_000
        start = time.perf_counter()
        for _ in range(iterations):
            telemetry.counter("repro_overhead_probe_total").inc()
            with telemetry.span("probe"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"disabled path took {elapsed:.3f}s for {iterations} iterations"


# -- the live window stream ---------------------------------------------


class TestWindowStream:
    def test_stream_mirrors_the_sampler_exactly(self):
        with telemetry.session():
            result = small_run(cache_size=4 * MB, line_size=64)
            series = telemetry.stream().latest("4MB/64B")
            assert series is not None
            assert series.mpki_series() == [s.mpki for s in result.samples]
            assert [s.index for s in series.samples] == [
                s.index for s in result.samples
            ]
            assert telemetry.registry().value(
                "repro_windows_total", series="4MB/64B"
            ) == len(result.samples)

    def test_window_gauges_hold_the_latest_sample(self):
        with telemetry.session():
            result = small_run(cache_size=1 * MB, line_size=64)
            last = result.samples[-1]
            assert telemetry.registry().value(
                "repro_window_mpki", series="1MB/64B"
            ) == pytest.approx(last.mpki)


# -- profile and registry-sourced degradation ---------------------------


class TestProfile:
    def test_profile_reconciles_with_result_aggregates(self):
        with telemetry.session():
            with telemetry.span("run"):
                with telemetry.span("replay"):
                    results = [small_run()]
            profiling.publish_results(telemetry.registry(), results)
            profile = profiling.build_profile(
                results, telemetry.tracker(), telemetry.registry()
            )
        assert profile["reconciled"] is True
        assert profile["runs"] == 1
        assert profile["accesses"] == results[0].accesses
        assert profile["windows"] == len(results[0].samples)
        assert profile["phase_coverage"] >= profiling.PHASE_COVERAGE_FLOOR
        rendered = profiling.render_profile(profile)
        assert "reconciliation       : OK" in rendered

    def test_unpublished_results_fail_reconciliation(self):
        with telemetry.session():
            with telemetry.span("run"):
                pass
            results = [small_run()]  # never published into the registry
            profile = profiling.build_profile(
                results, telemetry.tracker(), telemetry.registry()
            )
        assert profile["reconciled"] is False
        assert "MISMATCH" in profiling.render_profile(profile)

    def test_registry_degradation_matches_merge_records(self):
        records = (
            DegradationRecord(kind="drop-data", source="fsb", count=3, detail="x"),
            DegradationRecord(kind="miss-window", source="cb", count=1, detail="y"),
            DegradationRecord(kind="drop-data", source="fsb", count=2, detail="x"),
        )
        registry = MetricRegistry()
        for record in records:
            registry.counter(
                profiling.FAULT_EVENTS_TOTAL,
                kind=record.kind,
                source=record.source,
                detail=record.detail,
            ).inc(record.count)
        assert profiling.registry_degradation_records(registry) == merge_records(
            records
        )


# -- the CLI flags end to end -------------------------------------------


class TestCliIntegration:
    def test_telemetry_flags_produce_all_three_sinks(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.prom"
        profile_path = tmp_path / "profile.json"
        code = cli.main(
            [
                "--workload", "FIMI", "--cores", "2", "--cache", "1MB,4MB",
                "--telemetry", str(events),
                "--metrics-file", str(metrics),
                "--profile", str(profile_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reconciliation       : OK" in out
        samples = parse_prometheus(metrics.read_text(encoding="utf-8"))
        assert samples["repro_runs_total"] == 2
        profile = json.loads(profile_path.read_text(encoding="utf-8"))
        assert profile["reconciled"] is True
        assert abs(
            sum(p["seconds"] for p in profile["phases"].values())
            - profile["total_seconds"]
        ) <= 0.05 * profile["total_seconds"]
        assert any(e.get("event") == "window" for e in read_events(events))

    def test_cli_output_is_byte_identical_without_telemetry(self, capsys):
        argv = ["--workload", "FIMI", "--cores", "2", "--cache", "1MB"]
        assert cli.main(argv) == 0
        baseline = capsys.readouterr().out
        with telemetry.session():
            pass  # a stale session must not leak into the next run
        assert cli.main(argv) == 0
        assert capsys.readouterr().out == baseline
