"""Tests for the content-addressed trace cache (repro.trace.cache)."""

from __future__ import annotations

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.trace.cache import (
    MANIFEST_NAME,
    OFF_VALUES,
    TRACE_CACHE_ENV,
    TraceCache,
    cache_key,
    resolve_trace_cache,
)


def sample_payload():
    meta = {"workload": "FIMI", "cores": 4, "filtered": 123}
    arrays = {
        "addresses": np.arange(1000, dtype=np.uint64) * 64,
        "kinds": np.zeros(1000, dtype=np.uint8),
        "events": np.array([[0, 1000, 2]], dtype=np.uint64),
    }
    return meta, arrays


class TestCacheKey:
    def test_order_independent(self):
        assert cache_key({"a": 1, "b": 2}) == cache_key({"b": 2, "a": 1})

    def test_any_field_change_changes_key(self):
        base = {"workload": "FIMI", "cores": 4, "quantum": 4096, "seed": 7}
        reference = cache_key(base)
        for field, value in [
            ("workload", "PLSA"),
            ("cores", 8),
            ("quantum", 1024),
            ("seed", 8),
        ]:
            assert cache_key({**base, field: value}) != reference

    def test_key_is_hex_sha256(self):
        key = cache_key({"x": 1})
        assert len(key) == 64
        int(key, 16)  # parses as hex


class TestHitMiss:
    def test_miss_then_store_then_hit(self, tmp_path):
        cache = TraceCache(tmp_path)
        key = cache_key({"n": 1})
        assert cache.load(key) is None
        assert cache.stats.misses == 1

        meta, arrays = sample_payload()
        cache.store(key, meta, arrays)
        assert cache.stats.stores == 1
        assert cache.contains(key)

        loaded = cache.load(key)
        assert loaded is not None
        loaded_meta, loaded_arrays = loaded
        assert loaded_meta == meta
        for name, array in arrays.items():
            assert np.array_equal(loaded_arrays[name], array)
            assert loaded_arrays[name].dtype == array.dtype
        assert cache.stats.hits == 1

    def test_mmap_load_shares_pages(self, tmp_path):
        cache = TraceCache(tmp_path)
        key = cache_key({"n": 2})
        cache.store(key, *sample_payload())
        _, arrays = cache.load(key, mmap=True)
        assert isinstance(arrays["addresses"], np.memmap)
        _, arrays = cache.load(key, mmap=False)
        assert not isinstance(arrays["addresses"], np.memmap)

    def test_distinct_keys_are_distinct_entries(self, tmp_path):
        cache = TraceCache(tmp_path)
        a, b = cache_key({"n": 1}), cache_key({"n": 2})
        cache.store(a, {"tag": "a"}, {"x": np.zeros(1)})
        cache.store(b, {"tag": "b"}, {"x": np.ones(1)})
        assert cache.load(a)[0] == {"tag": "a"}
        assert cache.load(b)[0] == {"tag": "b"}

    def test_short_key_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            TraceCache(tmp_path).entry_dir("ab")


class TestCorruption:
    """A damaged cache must regenerate, never crash."""

    def _stored(self, tmp_path):
        cache = TraceCache(tmp_path)
        key = cache_key({"n": 3})
        cache.store(key, *sample_payload())
        return cache, key

    def test_truncated_manifest_is_a_miss(self, tmp_path):
        cache, key = self._stored(tmp_path)
        manifest = cache.entry_dir(key) / MANIFEST_NAME
        manifest.write_text(manifest.read_text()[: 10])
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1
        # the wreck was dropped, so a fresh store publishes cleanly
        cache.store(key, *sample_payload())
        assert cache.load(key) is not None

    def test_missing_array_file_is_a_miss(self, tmp_path):
        cache, key = self._stored(tmp_path)
        os.remove(cache.entry_dir(key) / "addresses.npy")
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1

    def test_truncated_array_file_is_a_miss(self, tmp_path):
        cache, key = self._stored(tmp_path)
        path = cache.entry_dir(key) / "addresses.npy"
        path.write_bytes(path.read_bytes()[:-32])
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1

    def test_wrong_key_in_manifest_is_a_miss(self, tmp_path):
        cache, key = self._stored(tmp_path)
        manifest_path = cache.entry_dir(key) / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["key"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1


def _concurrent_writer(args):
    root, key, value = args
    cache = TraceCache(root)
    cache.store(
        key,
        {"writer": value},
        {"payload": np.full(50_000, value, dtype=np.int64)},
    )
    return value


class TestConcurrency:
    def test_racing_writers_publish_one_coherent_entry(self, tmp_path):
        """N processes storing the same key: a complete entry survives.

        Content addressing makes all copies interchangeable, so the
        only requirement is that the published entry is internally
        consistent (meta matches arrays) — no torn manifests, no
        half-written files.
        """
        key = cache_key({"race": True})
        with multiprocessing.Pool(4) as pool:
            pool.map(
                _concurrent_writer, [(str(tmp_path), key, v) for v in range(8)]
            )
        cache = TraceCache(tmp_path)
        meta, arrays = cache.load(key)
        winner = meta["writer"]
        assert np.array_equal(
            arrays["payload"], np.full(50_000, winner, dtype=np.int64)
        )
        # no temp wreckage left behind
        assert not [p for p in cache.root.iterdir() if p.name.startswith(".tmp-")]


class TestResolve:
    def test_explicit_directory_wins(self, tmp_path):
        cache = resolve_trace_cache(str(tmp_path / "cache"), environ={})
        assert cache is not None
        assert cache.root == tmp_path / "cache"

    def test_environment_fallback(self, tmp_path):
        environ = {TRACE_CACHE_ENV: str(tmp_path / "env-cache")}
        cache = resolve_trace_cache(None, environ=environ)
        assert cache is not None
        assert cache.root == tmp_path / "env-cache"

    def test_unset_means_off(self):
        assert resolve_trace_cache(None, environ={}) is None

    @pytest.mark.parametrize("value", sorted(OFF_VALUES) + ["OFF", "None"])
    def test_off_values(self, value):
        assert resolve_trace_cache(value, environ={}) is None
        assert resolve_trace_cache(None, environ={TRACE_CACHE_ENV: value}) is None
