"""Tests for trace filters (L1 filtering, address windows)."""

import numpy as np
import pytest

from repro.cache.cache import CacheConfig, FullyAssociativeLRU
from repro.trace.filters import address_window, l1_filter, reads_only
from repro.trace.generators import Region, cyclic_scan, uniform_random
from repro.trace.record import AccessKind, TraceChunk
from repro.units import KB


class TestL1Filter:
    def test_hot_reuse_removed(self):
        """A loop over a tiny buffer reaches the bus once per line."""
        trace = cyclic_scan(Region(0, 2 * KB), passes=10, stride=64)
        filtered = l1_filter(trace)
        assert len(filtered) == 32  # 32 cold lines, 9 further passes all hit

    def test_streaming_passes_through(self):
        trace = cyclic_scan(Region(0, 1 << 20), passes=1, stride=64)
        config = CacheConfig(size=8 * KB, line_size=64, associativity=8)
        filtered = l1_filter(trace, config)
        assert len(filtered) == len(trace)  # nothing ever re-hits

    def test_writes_always_on_bus(self):
        """Write-through: every write reaches the bus, hot or not."""
        addresses = [0x100] * 10
        trace = TraceChunk(addresses, kinds=[1] * 10)
        filtered = l1_filter(trace)
        assert len(filtered) == 10

    def test_per_core_filters_are_private(self):
        # Two cores touching the same line: each suffers its own cold miss.
        trace = TraceChunk([0x100, 0x100, 0x100, 0x100], cores=[0, 1, 0, 1])
        filtered = l1_filter(trace)
        assert len(filtered) == 2
        assert sorted(filtered.cores.tolist()) == [0, 1]

    def test_llc_misses_nearly_invariant_under_filtering(self):
        """Filtering removes only would-be hits, so downstream misses
        change by at most the 'filtered LRU' recency residual — a
        fraction of a percent here."""
        rng = np.random.default_rng(51)
        trace = uniform_random(Region(0, 256 * KB), count=20000, granule=64, rng=rng)
        filtered = l1_filter(trace, CacheConfig.fully_associative(4 * KB))
        assert len(filtered) < len(trace)
        for capacity_lines in (256, 1024, 4096):
            raw_cache = FullyAssociativeLRU(capacity_lines)
            raw_cache.access_chunk(trace)
            filtered_cache = FullyAssociativeLRU(capacity_lines)
            filtered_cache.access_chunk(filtered)
            assert filtered_cache.stats.misses == pytest.approx(
                raw_cache.stats.misses, rel=0.005
            )

    def test_cyclic_scan_filtering_exactly_invariant(self):
        """For scans the residual vanishes: the filtered trace carries
        exactly the cold/capacity line stream."""
        trace = cyclic_scan(Region(0, 64 * KB), passes=4, stride=16)
        filtered = l1_filter(trace, CacheConfig.fully_associative(4 * KB))
        for capacity_lines in (256, 2048):
            raw_cache = FullyAssociativeLRU(capacity_lines)
            raw_cache.access_chunk(trace)
            filtered_cache = FullyAssociativeLRU(capacity_lines)
            filtered_cache.access_chunk(filtered)
            assert filtered_cache.stats.misses == raw_cache.stats.misses

    def test_kernel_trace_volume_reduction(self):
        from repro.workloads import get_workload

        run = get_workload("SVM-RFE").run_kernel()
        filtered = l1_filter(run.trace)
        # The hot training loop is L1-resident: most traffic disappears.
        assert len(filtered) < 0.5 * len(run.trace)


class TestAddressWindow:
    def test_window_selects_range(self):
        trace = TraceChunk([0x100, 0x200, 0x300])
        window = address_window(trace, 0x150, 0x250)
        assert list(window.addresses) == [0x200]

    def test_reads_only(self):
        trace = TraceChunk([1, 2, 3], kinds=[0, 1, 0])
        assert len(reads_only(trace)) == 2


class TestVictimCache:
    def make(self, assoc=1, sets=4, victim_lines=4):
        from repro.cache.victim import VictimCachedHierarchy

        config = CacheConfig(
            size=64 * assoc * sets, line_size=64, associativity=assoc
        )
        return VictimCachedHierarchy(config, victim_lines=victim_lines)

    def test_conflict_misses_rescued(self):
        """Two lines thrashing one direct-mapped set both live in the
        victim buffer after warm-up."""
        hierarchy = self.make(assoc=1, sets=4, victim_lines=4)
        a = 0x0  # set 0
        b = 4 * 64  # also set 0
        hierarchy.access(a)
        hierarchy.access(b)  # evicts a into the victim buffer
        assert hierarchy.access(a)  # victim hit
        assert hierarchy.access(b)  # victim hit
        assert hierarchy.stats.victim_hits == 2

    def test_capacity_misses_not_rescued(self):
        """A scan much bigger than primary+victim still thrashes."""
        hierarchy = self.make(assoc=1, sets=4, victim_lines=2)
        trace = cyclic_scan(Region(0, 8 * KB), passes=3, stride=64)
        hierarchy.access_chunk(trace)
        assert hierarchy.stats.hit_ratio < 0.1

    def test_stats_consistent(self):
        hierarchy = self.make()
        trace = uniform_random(
            Region(0, 4 * KB), count=2000, granule=64, rng=np.random.default_rng(3)
        )
        hierarchy.access_chunk(trace)
        stats = hierarchy.primary.stats
        assert stats.hits + stats.misses == stats.accesses

    def test_victim_cache_never_hurts(self):
        """Miss count with the victim buffer <= without it."""
        from repro.cache.cache import SetAssociativeCache

        rng = np.random.default_rng(9)
        trace = uniform_random(Region(0, 8 * KB), count=5000, granule=64, rng=rng)
        config = CacheConfig(size=2 * KB, line_size=64, associativity=1)
        plain = SetAssociativeCache(config)
        plain.access_chunk(trace)
        victim = self.make(assoc=1, sets=32, victim_lines=8)
        victim.access_chunk(trace)
        assert victim.misses <= plain.stats.misses

    def test_rejects_bad_config(self):
        from repro.cache.victim import VictimCachedHierarchy
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            VictimCachedHierarchy(CacheConfig(size=1 * KB, associativity=4), victim_lines=0)
