"""Tests for synthetic access-pattern generators."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.generators import (
    Region,
    cyclic_scan,
    interleave_mix,
    pointer_chase,
    sequential_scan,
    uniform_random,
    zipf_random,
)


class TestRegion:
    def test_end(self):
        assert Region(100, 50).end == 150

    def test_rejects_bad_size(self):
        with pytest.raises(TraceError):
            Region(0, 0)

    def test_rejects_negative_base(self):
        with pytest.raises(TraceError):
            Region(-1, 10)


class TestSequentialScan:
    def test_addresses_are_strided(self):
        chunk = sequential_scan(Region(0, 1024), count=10, stride=8)
        assert list(chunk.addresses) == [i * 8 for i in range(10)]

    def test_wraps_at_region_end(self):
        chunk = sequential_scan(Region(0, 32), count=6, stride=8)
        assert list(chunk.addresses) == [0, 8, 16, 24, 0, 8]

    def test_stays_in_region(self):
        region = Region(0x1000, 256)
        chunk = sequential_scan(region, count=1000, stride=8)
        assert chunk.addresses.min() >= region.base
        assert chunk.addresses.max() < region.end

    def test_backward(self):
        chunk = sequential_scan(Region(0, 64), count=3, stride=8, backward=True)
        deltas = np.diff(chunk.addresses.astype(np.int64))
        assert all(d == -8 for d in deltas)

    def test_write_fraction(self):
        rng = np.random.default_rng(0)
        chunk = sequential_scan(
            Region(0, 4096), count=2000, write_fraction=0.5, rng=rng
        )
        assert 0.4 < chunk.write_count() / len(chunk) < 0.6

    def test_rejects_bad_stride(self):
        with pytest.raises(TraceError):
            sequential_scan(Region(0, 64), count=1, stride=0)


class TestCyclicScan:
    def test_full_passes(self):
        chunk = cyclic_scan(Region(0, 64), passes=3, stride=8)
        assert len(chunk) == 24
        # Every address appears exactly `passes` times.
        _, counts = np.unique(chunk.addresses, return_counts=True)
        assert set(counts) == {3}

    def test_rejects_zero_passes(self):
        with pytest.raises(TraceError):
            cyclic_scan(Region(0, 64), passes=0)


class TestUniformRandom:
    def test_in_region_and_aligned(self):
        region = Region(0x4000, 4096)
        chunk = uniform_random(region, count=5000, granule=8)
        assert chunk.addresses.min() >= region.base
        assert chunk.addresses.max() < region.end
        assert all(a % 8 == 0 for a in chunk.addresses[:50])

    def test_covers_region(self):
        chunk = uniform_random(Region(0, 1024), count=20000, granule=64)
        assert len(np.unique(chunk.lines(64))) == 16

    def test_deterministic_with_seed(self):
        a = uniform_random(Region(0, 1024), 100, rng=np.random.default_rng(5))
        b = uniform_random(Region(0, 1024), 100, rng=np.random.default_rng(5))
        assert np.array_equal(a.addresses, b.addresses)


class TestZipfRandom:
    def test_skewed_popularity(self):
        chunk = zipf_random(Region(0, 64 * 1024), count=20000, alpha=1.4, granule=64)
        _, counts = np.unique(chunk.addresses, return_counts=True)
        counts = np.sort(counts)[::-1]
        # Top address is much hotter than the median one.
        assert counts[0] > 10 * np.median(counts)

    def test_rejects_bad_alpha(self):
        with pytest.raises(TraceError):
            zipf_random(Region(0, 1024), 10, alpha=0)


class TestPointerChase:
    def test_visits_all_nodes(self):
        chunk = pointer_chase(Region(0, 64 * 16), count=16, node_size=64)
        assert len(np.unique(chunk.addresses)) == 16

    def test_no_spatial_locality(self):
        chunk = pointer_chase(Region(0, 64 * 256), count=256, node_size=64)
        deltas = np.abs(np.diff(chunk.addresses.astype(np.int64)))
        assert np.median(deltas) > 64  # successive nodes mostly far apart


class TestInterleaveMix:
    def test_total_count(self):
        a = sequential_scan(Region(0, 1024), 100, stride=8)
        b = uniform_random(Region(0x10000, 1024), 100)
        mixed = interleave_mix([a, b], [0.5, 0.5], count=500)
        assert len(mixed) == 500

    def test_weights_respected(self):
        a = sequential_scan(Region(0, 1024), 100, stride=8)
        b = uniform_random(Region(0x100000, 1024), 100)
        mixed = interleave_mix([a, b], [0.9, 0.1], count=4000)
        from_a = int((mixed.addresses < 0x100000).sum())
        assert 0.85 < from_a / 4000 < 0.95

    def test_rejects_mismatched_weights(self):
        with pytest.raises(TraceError):
            interleave_mix([sequential_scan(Region(0, 64), 8)], [0.5, 0.5], 10)

    def test_empty_inputs(self):
        assert len(interleave_mix([], [], 10)) == 0
