"""Tests for the kernel instrumentation layer."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.instrument import MemoryArena, TraceRecorder, TracedArray
from repro.trace.record import AccessKind


class TestTraceRecorder:
    def test_record_and_trace(self):
        recorder = TraceRecorder()
        recorder.record(0x100, AccessKind.READ)
        recorder.record(0x108, AccessKind.WRITE, pc=5)
        trace = recorder.trace()
        assert list(trace.addresses) == [0x100, 0x108]
        assert list(trace.kinds) == [0, 1]
        assert list(trace.pcs) == [0, 5]

    def test_record_range_vectorized(self):
        recorder = TraceRecorder()
        recorder.record_range(0x1000, count=4, stride=16, kind=AccessKind.READ)
        assert list(recorder.trace().addresses) == [0x1000, 0x1010, 0x1020, 0x1030]

    def test_record_range_empty(self):
        recorder = TraceRecorder()
        recorder.record_range(0, 0, 8, AccessKind.READ)
        assert recorder.access_count == 0

    def test_instruction_accounting(self):
        recorder = TraceRecorder()
        recorder.record(0x10, AccessKind.READ)
        recorder.retire(9)
        assert recorder.instruction_count == 10  # 1 access + 9 retired

    def test_interleaved_scalar_and_range_order(self):
        recorder = TraceRecorder()
        recorder.record(0x1, AccessKind.READ)
        recorder.record_range(0x10, 2, 8, AccessKind.WRITE)
        recorder.record(0x2, AccessKind.READ)
        assert list(recorder.trace().addresses) == [0x1, 0x10, 0x18, 0x2]


class TestMemoryArena:
    def test_disjoint_allocations(self):
        arena = MemoryArena()
        a = arena.allocate(100)
        b = arena.allocate(100)
        assert b >= a + 100

    def test_page_alignment(self):
        arena = MemoryArena()
        arena.allocate(1)
        second = arena.allocate(1)
        assert second % MemoryArena.PAGE == 0

    def test_rejects_bad_size(self):
        with pytest.raises(TraceError):
            MemoryArena().allocate(0)


class TestTracedArray:
    def make(self, shape=(8,), dtype=np.float64):
        recorder = TraceRecorder()
        arena = MemoryArena()
        return arena.array(recorder, shape, dtype), recorder

    def test_scalar_read_records_address(self):
        array, recorder = self.make()
        array[3]
        trace = recorder.trace()
        assert trace.addresses[0] == array.base + 3 * 8
        assert trace.kinds[0] == 0

    def test_scalar_write_records_write(self):
        array, recorder = self.make()
        array[2] = 7.0
        trace = recorder.trace()
        assert trace.kinds[0] == 1
        assert array.data[2] == 7.0

    def test_negative_index(self):
        array, recorder = self.make()
        array[-1]
        assert recorder.trace().addresses[0] == array.base + 7 * 8

    def test_2d_element_address(self):
        array, recorder = self.make(shape=(4, 5))
        array[2, 3]
        assert recorder.trace().addresses[0] == array.base + (2 * 5 + 3) * 8

    def test_row_slice(self):
        array, recorder = self.make(shape=(4, 5))
        array[1, :]
        trace = recorder.trace()
        assert len(trace) == 5
        assert trace.addresses[0] == array.base + 5 * 8

    def test_column_slice_strides_by_row(self):
        array, recorder = self.make(shape=(4, 5))
        array[:, 2]
        trace = recorder.trace()
        assert len(trace) == 4
        deltas = np.diff(trace.addresses.astype(np.int64))
        assert all(d == 5 * 8 for d in deltas)

    def test_1d_slice_write(self):
        array, recorder = self.make()
        array[2:5] = 1.0
        trace = recorder.trace()
        assert len(trace) == 3
        assert set(trace.kinds) == {1}
        assert list(array.data[2:5]) == [1.0] * 3

    def test_scan_read_covers_array(self):
        array, recorder = self.make(shape=(16,))
        array.scan_read()
        assert len(recorder.trace()) == 16

    def test_gather(self):
        array, recorder = self.make(shape=(16,))
        array.data[:] = np.arange(16)
        values = array.gather([3, 1, 3])
        assert list(values) == [3, 1, 3]
        assert len(recorder.trace()) == 3

    def test_rejects_3d(self):
        recorder = TraceRecorder()
        with pytest.raises(TraceError):
            TracedArray(np.zeros((2, 2, 2)), recorder, base=0)

    def test_addresses_fall_inside_allocation(self):
        recorder = TraceRecorder()
        arena = MemoryArena()
        array = arena.array(recorder, (64,), np.float64)
        array.scan_read()
        trace = recorder.trace()
        assert trace.addresses.min() >= array.base
        assert trace.addresses.max() < array.base + 64 * 8
