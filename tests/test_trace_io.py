"""Tests for trace serialization."""

import io

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.io import load_trace, save_trace
from repro.trace.record import TraceChunk


class TestRoundTrip:
    def test_all_columns_preserved(self, tmp_path):
        chunk = TraceChunk(
            [1, 2, 3], kinds=[0, 1, 0], cores=[4, 5, 6], pcs=[7, 8, 9]
        )
        path = tmp_path / "trace.npz"
        save_trace(chunk, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.addresses, chunk.addresses)
        assert np.array_equal(loaded.kinds, chunk.kinds)
        assert np.array_equal(loaded.cores, chunk.cores)
        assert np.array_equal(loaded.pcs, chunk.pcs)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_trace(TraceChunk.empty(), path)
        assert len(load_trace(path)) == 0

    def test_kernel_trace_round_trip(self, tmp_path):
        from repro.workloads import get_workload

        run = get_workload("PLSA").run_kernel()
        path = tmp_path / "plsa.npz"
        save_trace(run.trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.addresses, run.trace.addresses)

    def test_file_object(self):
        buffer = io.BytesIO()
        save_trace(TraceChunk([1, 2]), buffer)
        buffer.seek(0)
        assert len(load_trace(buffer)) == 2


class TestErrors:
    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "wrong.npz"
        np.savez(
            path,
            format=np.array("repro-trace-v99"),
            addresses=np.zeros(1, dtype=np.uint64),
            kinds=np.zeros(1, dtype=np.uint8),
            cores=np.zeros(1, dtype=np.uint16),
            pcs=np.zeros(1, dtype=np.uint64),
        )
        with pytest.raises(TraceError):
            load_trace(path)
