"""Tests for trace record types."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.record import AccessKind, MemoryAccess, TraceChunk


class TestMemoryAccess:
    def test_defaults(self):
        access = MemoryAccess(address=0x1000)
        assert access.kind is AccessKind.READ
        assert access.core == 0
        assert access.size == 8

    def test_line(self):
        assert MemoryAccess(address=130).line(64) == 2

    def test_kind_is_read(self):
        assert AccessKind.READ.is_read
        assert not AccessKind.WRITE.is_read


class TestTraceChunkConstruction:
    def test_from_lists(self):
        chunk = TraceChunk([1, 2, 3])
        assert len(chunk) == 3
        assert chunk.addresses.dtype == np.uint64

    def test_scalar_core_broadcast(self):
        chunk = TraceChunk([1, 2], cores=5)
        assert list(chunk.cores) == [5, 5]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TraceError):
            TraceChunk([1, 2, 3], kinds=[0, 1])

    def test_from_accesses_round_trip(self):
        accesses = [
            MemoryAccess(0x100, AccessKind.READ, core=1, pc=7),
            MemoryAccess(0x200, AccessKind.WRITE, core=2, pc=9),
        ]
        chunk = TraceChunk.from_accesses(accesses)
        back = list(chunk)
        assert [a.address for a in back] == [0x100, 0x200]
        assert back[1].kind is AccessKind.WRITE
        assert back[0].core == 1
        assert back[1].pc == 9

    def test_empty(self):
        assert len(TraceChunk.empty()) == 0


class TestTraceChunkOperations:
    def test_lines_power_of_two(self):
        chunk = TraceChunk([0, 63, 64, 127, 128])
        assert list(chunk.lines(64)) == [0, 0, 1, 1, 2]

    def test_lines_large_line_size(self):
        chunk = TraceChunk([0, 4095, 4096])
        assert list(chunk.lines(4096)) == [0, 0, 1]

    def test_lines_rejects_nonpositive(self):
        with pytest.raises(TraceError):
            TraceChunk([1]).lines(0)

    def test_slice(self):
        chunk = TraceChunk(list(range(10)))
        part = chunk[2:5]
        assert list(part.addresses) == [2, 3, 4]

    def test_non_slice_index_rejected(self):
        with pytest.raises(TypeError):
            TraceChunk([1, 2])[0]

    def test_with_core(self):
        chunk = TraceChunk([1, 2], cores=0)
        retagged = chunk.with_core(7)
        assert set(retagged.cores) == {7}
        assert set(chunk.cores) == {0}  # original untouched

    def test_read_write_counts(self):
        chunk = TraceChunk([1, 2, 3], kinds=[0, 1, 0])
        assert chunk.read_count() == 2
        assert chunk.write_count() == 1

    def test_concatenate_preserves_order(self):
        a = TraceChunk([1, 2])
        b = TraceChunk([3])
        merged = TraceChunk.concatenate([a, b])
        assert list(merged.addresses) == [1, 2, 3]

    def test_concatenate_skips_empty(self):
        merged = TraceChunk.concatenate([TraceChunk.empty(), TraceChunk([5])])
        assert list(merged.addresses) == [5]

    def test_concatenate_nothing(self):
        assert len(TraceChunk.concatenate([])) == 0
