"""Tests for trace-level statistics."""

import numpy as np

from repro.trace.generators import Region, sequential_scan, uniform_random
from repro.trace.record import TraceChunk
from repro.trace.stats import (
    dominant_stride_fraction,
    footprint_bytes,
    profile_trace,
    stride_histogram,
    working_set_curve,
)


class TestProfileTrace:
    def test_counts(self):
        chunk = TraceChunk([0, 64, 128], kinds=[0, 1, 0], cores=[0, 0, 1])
        profile = profile_trace(chunk)
        assert profile.accesses == 3
        assert profile.reads == 2
        assert profile.writes == 1
        assert profile.per_core == {0: 2, 1: 1}

    def test_footprint(self):
        chunk = TraceChunk([0, 8, 16, 64, 72])
        profile = profile_trace(chunk, line_size=64)
        assert profile.footprint_lines == 2
        assert profile.footprint_bytes == 128

    def test_read_fraction(self):
        chunk = TraceChunk([0, 1, 2, 3], kinds=[0, 0, 0, 1])
        assert profile_trace(chunk).read_fraction == 0.75


class TestFootprintBytes:
    def test_matches_distinct_lines(self):
        chunk = sequential_scan(Region(0, 4096), count=512, stride=8)
        assert footprint_bytes(chunk, 64) == 4096


class TestStrideHistogram:
    def test_constant_stride_dominates(self):
        chunk = sequential_scan(Region(0, 1 << 20), count=1000, stride=16)
        histogram = stride_histogram(chunk)
        assert max(histogram, key=histogram.get) == 16
        assert histogram[16] > 0.99

    def test_short_trace(self):
        assert stride_histogram(TraceChunk([1])) == {}

    def test_dominant_stride_fraction_streaming(self):
        chunk = sequential_scan(Region(0, 1 << 20), count=1000, stride=64)
        assert dominant_stride_fraction(chunk) > 0.99

    def test_dominant_stride_fraction_random(self):
        chunk = uniform_random(
            Region(0, 1 << 26), count=2000, rng=np.random.default_rng(3)
        )
        assert dominant_stride_fraction(chunk) < 0.2


class TestWorkingSetCurve:
    def test_monotone_growth(self):
        chunk = uniform_random(Region(0, 1 << 16), count=4000, rng=np.random.default_rng(1))
        curve = working_set_curve(chunk, points=16)
        footprints = [f for _, f in curve]
        assert footprints == sorted(footprints)
        assert footprints[-1] == len(np.unique(chunk.lines(64)))

    def test_empty(self):
        assert working_set_curve(TraceChunk.empty()) == []
