"""Tests for trace-stream combinators."""

import pytest

from repro.errors import TraceError
from repro.trace.record import TraceChunk
from repro.trace.stream import (
    StreamCursor,
    chunk_stream,
    concat,
    limit,
    map_chunks,
    materialize,
    round_robin_interleave,
    split_by_core,
)


def make_chunk(start: int, n: int) -> TraceChunk:
    return TraceChunk(list(range(start, start + n)))


class TestChunkStream:
    def test_splits_into_bounded_chunks(self):
        pieces = list(chunk_stream(make_chunk(0, 10), chunk_size=4))
        assert [len(p) for p in pieces] == [4, 4, 2]

    def test_preserves_order(self):
        pieces = list(chunk_stream(make_chunk(0, 10), chunk_size=3))
        merged = TraceChunk.concatenate(pieces)
        assert list(merged.addresses) == list(range(10))

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(TraceError):
            list(chunk_stream(make_chunk(0, 4), chunk_size=0))


class TestConcatMaterialize:
    def test_concat(self):
        merged = materialize(concat([[make_chunk(0, 3)], [make_chunk(3, 2)]]))
        assert list(merged.addresses) == [0, 1, 2, 3, 4]


class TestStreamCursor:
    def test_take_spans_chunks(self):
        cursor = StreamCursor([make_chunk(0, 3), make_chunk(3, 3)])
        piece = cursor.take(5)
        assert list(piece.addresses) == [0, 1, 2, 3, 4]

    def test_exhaustion(self):
        cursor = StreamCursor([make_chunk(0, 2)])
        assert len(cursor.take(5)) == 2
        assert cursor.done
        assert len(cursor.take(5)) == 0


class TestRoundRobinInterleave:
    def test_quantum_rotation(self):
        streams = [[make_chunk(0, 4)], [make_chunk(100, 4)]]
        slices = list(round_robin_interleave(streams, quantum=2))
        addresses = [list(s.addresses) for s in slices]
        assert addresses == [[0, 1], [100, 101], [2, 3], [102, 103]]

    def test_core_tagging(self):
        streams = [[make_chunk(0, 2)], [make_chunk(10, 2)]]
        slices = list(round_robin_interleave(streams, quantum=2))
        assert set(slices[0].cores) == {0}
        assert set(slices[1].cores) == {1}

    def test_uneven_streams_drop_out(self):
        streams = [[make_chunk(0, 6)], [make_chunk(100, 2)]]
        slices = list(round_robin_interleave(streams, quantum=2))
        merged = TraceChunk.concatenate(slices)
        assert len(merged) == 8
        # core 1's two transactions appear exactly once
        assert sorted(int(a) for a in merged.addresses[merged.cores == 1]) == [100, 101]

    def test_conservation(self):
        streams = [[make_chunk(i * 100, 7)] for i in range(3)]
        merged = materialize(round_robin_interleave(streams, quantum=3))
        assert len(merged) == 21
        expected = sorted(i * 100 + j for i in range(3) for j in range(7))
        assert sorted(int(a) for a in merged.addresses) == expected

    def test_rejects_bad_quantum(self):
        with pytest.raises(TraceError):
            list(round_robin_interleave([[make_chunk(0, 1)]], quantum=0))


class TestSplitByCore:
    def test_partitions(self):
        chunk = TraceChunk([1, 2, 3, 4], cores=[0, 1, 0, 1])
        parts = split_by_core(chunk)
        assert list(parts[0].addresses) == [1, 3]
        assert list(parts[1].addresses) == [2, 4]


class TestMapLimit:
    def test_map_chunks(self):
        doubled = materialize(
            map_chunks([make_chunk(0, 3)], lambda c: TraceChunk(c.addresses * 2))
        )
        assert list(doubled.addresses) == [0, 2, 4]

    def test_limit_truncates(self):
        limited = materialize(limit([make_chunk(0, 5), make_chunk(5, 5)], 7))
        assert list(limited.addresses) == list(range(7))

    def test_limit_zero(self):
        assert len(materialize(limit([make_chunk(0, 5)], 0))) == 0
