"""Tests for repro.units."""

import pytest

from repro import units


class TestFormatSize:
    def test_bytes(self):
        assert units.format_size(64) == "64B"

    def test_kilobytes(self):
        assert units.format_size(512 * units.KB) == "512KB"

    def test_megabytes(self):
        assert units.format_size(32 * units.MB) == "32MB"

    def test_gigabytes(self):
        assert units.format_size(2 * units.GB) == "2GB"

    def test_fractional(self):
        assert units.format_size(1.5 * units.MB) == "1.5MB"


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("64B", 64),
        ("512KB", 512 * units.KB),
        ("32MB", 32 * units.MB),
        ("1GB", units.GB),
        ("128", 128),
    ])
    def test_round_trips(self, text, expected):
        assert units.parse_size(text) == expected

    def test_case_insensitive(self):
        assert units.parse_size("4mb") == 4 * units.MB

    def test_format_parse_identity(self):
        for value in (64, 256, units.KB, 8 * units.MB, units.GB):
            assert units.parse_size(units.format_size(value)) == value


class TestPowerOfTwo:
    def test_powers(self):
        for p in range(20):
            assert units.is_power_of_two(1 << p)

    def test_non_powers(self):
        for value in (0, -2, 3, 6, 12, 100):
            assert not units.is_power_of_two(value)


class TestAddressHelpers:
    def test_line_number(self):
        assert units.line_number(0, 64) == 0
        assert units.line_number(63, 64) == 0
        assert units.line_number(64, 64) == 1

    def test_align_down(self):
        assert units.align_down(4097, 4096) == 4096
        assert units.align_down(4096, 4096) == 4096


class TestPaperSweeps:
    def test_cache_sweep_is_paper_range(self):
        assert units.PAPER_CACHE_SWEEP[0] == 4 * units.MB
        assert units.PAPER_CACHE_SWEEP[-1] == 256 * units.MB

    def test_line_sweep_is_paper_range(self):
        assert units.PAPER_LINE_SWEEP[0] == 64
        assert units.PAPER_LINE_SWEEP[-1] == 4096

    def test_sweeps_are_doubling(self):
        for a, b in zip(units.PAPER_CACHE_SWEEP, units.PAPER_CACHE_SWEEP[1:]):
            assert b == 2 * a
        for a, b in zip(units.PAPER_LINE_SWEEP, units.PAPER_LINE_SWEEP[1:]):
            assert b == 2 * a
