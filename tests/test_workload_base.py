"""Tests for the Workload abstraction: kernels, synthetic traces, guests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.trace.stats import footprint_bytes
from repro.workloads import WORKLOAD_NAMES, all_workloads, get_workload
from repro.workloads.base import PRIVATE_THREAD_SPACING, SHARED_ARENA_BASE


class TestRegistry:
    def test_all_names_resolve(self):
        for name in WORKLOAD_NAMES:
            assert get_workload(name).name == name

    def test_case_insensitive(self):
        assert get_workload("fimi").name == "FIMI"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_workload("APRIORI")

    def test_all_workloads_in_table_order(self):
        assert [w.name for w in all_workloads()] == list(WORKLOAD_NAMES)

    def test_metadata_present(self):
        for workload in all_workloads():
            assert workload.description
            assert workload.table1_parameters
            assert workload.category in "ABC"


class TestKernelRuns:
    @pytest.mark.parametrize("name", list(WORKLOAD_NAMES))
    def test_every_kernel_runs_and_traces(self, name):
        run = get_workload(name).run_kernel()
        assert run.accesses > 100
        assert run.instructions >= run.accesses
        assert run.apki > 0

    def test_category_a_threads_share_addresses(self):
        """SNP threads reference the same genotype matrix addresses."""
        workload = get_workload("SNP")
        run0 = workload.run_kernel(thread_id=0, threads=2)
        run1 = workload.run_kernel(thread_id=1, threads=2)
        lines0 = set(np.unique(run0.trace.lines(64)).tolist())
        lines1 = set(np.unique(run1.trace.lines(64)).tolist())
        overlap = len(lines0 & lines1) / len(lines0 | lines1)
        assert overlap > 0.9

    def test_category_c_threads_disjoint_addresses(self):
        """SHOT threads own disjoint frame buffers."""
        workload = get_workload("SHOT")
        run0 = workload.run_kernel(thread_id=0, threads=2)
        run1 = workload.run_kernel(thread_id=1, threads=2)
        lines0 = set(np.unique(run0.trace.lines(64)).tolist())
        lines1 = set(np.unique(run1.trace.lines(64)).tolist())
        assert not (lines0 & lines1)

    def test_arena_bases_by_category(self):
        shot = get_workload("SHOT")
        assert shot._arena_base(0) == SHARED_ARENA_BASE
        assert shot._arena_base(1) == SHARED_ARENA_BASE + PRIVATE_THREAD_SPACING
        fimi = get_workload("FIMI")
        assert fimi._arena_base(1) == SHARED_ARENA_BASE


class TestSyntheticTraces:
    def test_trace_length(self):
        workload = get_workload("FIMI")
        trace = workload.synthetic_thread_trace(0, 8, accesses=5000, scale=1 / 256)
        assert len(trace) == 5000

    def test_scale_shrinks_footprint(self):
        workload = get_workload("SHOT")
        small = workload.synthetic_thread_trace(0, 1, 20000, scale=1 / 1024)
        large = workload.synthetic_thread_trace(0, 1, 20000, scale=1 / 128)
        assert footprint_bytes(small) < footprint_bytes(large)

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            get_workload("FIMI").synthetic_thread_trace(0, 1, 100, scale=0)

    def test_write_fraction_matches_model(self):
        workload = get_workload("MDS")
        trace = workload.synthetic_thread_trace(0, 1, 20000, scale=1 / 256)
        read_fraction = trace.read_count() / len(trace)
        assert read_fraction == pytest.approx(workload.model.read_fraction, abs=0.05)

    def test_private_regions_disjoint_across_threads(self):
        workload = get_workload("SHOT")
        t0 = workload.synthetic_thread_trace(0, 4, 10000, scale=1 / 256)
        t1 = workload.synthetic_thread_trace(1, 4, 10000, scale=1 / 256)
        # Shared stream addresses may overlap, but private frame ranges
        # must not: check the per-thread private windows.
        window0 = (t0.addresses >= SHARED_ARENA_BASE + PRIVATE_THREAD_SPACING) & (
            t0.addresses < SHARED_ARENA_BASE + 2 * PRIVATE_THREAD_SPACING
        )
        window1 = (t1.addresses >= SHARED_ARENA_BASE + 2 * PRIVATE_THREAD_SPACING) & (
            t1.addresses < SHARED_ARENA_BASE + 3 * PRIVATE_THREAD_SPACING
        )
        assert window0.any() and window1.any()


class TestGuestWorkloads:
    def test_synthetic_guest_runs_in_cosim(self):
        from repro.cache.emulator import DragonheadConfig
        from repro.core.cosim import CoSimPlatform
        from repro.units import MB

        workload = get_workload("FIMI")
        guest = workload.guest_workload(
            "synthetic", accesses_per_thread=8192, scale=1 / 512
        )
        platform = CoSimPlatform(DragonheadConfig(cache_size=1 * MB))
        result = platform.run(guest, cores=4)
        assert result.accesses == 4 * 8192
        assert result.mpki >= 0

    def test_kernel_guest_runs_in_cosim(self):
        from repro.cache.emulator import DragonheadConfig
        from repro.core.cosim import CoSimPlatform
        from repro.units import MB

        workload = get_workload("PLSA")
        platform = CoSimPlatform(DragonheadConfig(cache_size=1 * MB), quantum=1024)
        result = platform.run(workload.kernel_guest(), cores=2)
        assert result.accesses > 1000

    def test_unknown_source_rejected(self):
        with pytest.raises(ConfigurationError):
            get_workload("FIMI").guest_workload("recorded")
