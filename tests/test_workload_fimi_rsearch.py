"""Deep-dive tests: FIMI and RSEARCH (the category-B pair)."""

import pytest

from repro.units import MB
from repro.workloads import get_workload


class TestFIMI:
    """Paper: shared read-only FP-tree + private conditional trees;
    16 MB working set growing to 32 MB on LCMP; +20-30% misses from
    per-thread private data."""

    @pytest.fixture(scope="class")
    def workload(self):
        return get_workload("FIMI")

    def test_tree_is_shared_and_pointer_walked(self, workload):
        by_name = {c.name: c for c in workload.model.components}
        tree = by_name["fimi-tree"]
        assert tree.sharing == "shared"
        assert tree.pattern == "pointer"
        assert not tree.prefetchable

    def test_private_conditional_trees_scale(self, workload):
        by_name = {c.name: c for c in workload.model.components}
        assert by_name["fimi-private"].sharing == "private"

    def test_kernel_mines_valid_itemsets(self, workload):
        from repro.mining.datasets import transactions
        from repro.mining.fpgrowth import bruteforce_frequent_itemsets

        run = workload.run_kernel(thread_id=0, threads=2)
        mined = run.result
        assert mined  # found frequent itemsets
        # The kernel mines the first half of the shared transaction set.
        data = transactions(n_transactions=240, n_items=40, avg_length=6, seed=23)
        subset = data[:120]
        expected = bruteforce_frequent_itemsets(subset, min_support=8, max_size=3)
        mined_small = {k: v for k, v in mined.items() if len(k) <= 3}
        assert mined_small == expected

    def test_kernel_tree_traffic_dominates(self, workload):
        """Most recorded accesses are FP-tree node touches."""
        run = workload.run_kernel()
        assert run.accesses > 5000
        assert run.apki > 100  # memory-intensive

    def test_working_set_growth_is_sublinear(self, workload):
        """Category B: footprint grows with cores but far from linearly."""
        model = workload.model
        growth = model.footprint_bytes(32) / model.footprint_bytes(8)
        assert 1.2 < growth < 3.0


class TestRSEARCH:
    """Paper: low DL2 MPKI (0.72), working set 4→8→16 MB with cores,
    modest line-size gains; category B."""

    @pytest.fixture(scope="class")
    def workload(self):
        return get_workload("RSEARCH")

    def test_second_lowest_dl2_mpki(self, workload):
        from repro.workloads import all_workloads

        dl2 = sorted(w.model.dl2_mpki() for w in all_workloads())
        assert workload.model.dl2_mpki() == pytest.approx(dl2[1])  # after PLSA

    def test_private_chart_drives_thread_scaling(self, workload):
        model = workload.model
        at_4mb = [model.llc_mpki(4 * MB, 64, cores) for cores in (8, 16, 32)]
        assert at_4mb[0] < at_4mb[1] < at_4mb[2]

    def test_kernel_finds_hairpin_structure(self, workload):
        run = workload.run_kernel()
        scores = run.result
        assert len(scores) > 5
        # Bit scores are finite and the scan covered the database slice.
        assert all(isinstance(bits, float) for _, bits in scores)

    def test_kernel_streams_the_database(self, workload):
        from repro.trace.stats import dominant_stride_fraction

        run = workload.run_kernel()
        # Database scan + chart reuse: strong constant-stride component.
        assert dominant_stride_fraction(run.trace) > 0.5

    def test_modest_line_gains(self, workload):
        model = workload.model
        at64 = model.llc_mpki(32 * MB, 64, 32)
        at256 = model.llc_mpki(32 * MB, 256, 32)
        assert 1.0 < at64 / at256 < 2.0
