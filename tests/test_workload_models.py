"""Tests for the access-component/memory-model machinery."""

import pytest

from repro.errors import CalibrationError, ConfigurationError
from repro.units import KB, MB
from repro.workloads.models import (
    AccessComponent,
    WorkloadMemoryModel,
    hot_component,
)


class TestAccessComponent:
    def test_rejects_unknown_pattern(self):
        with pytest.raises(ConfigurationError):
            AccessComponent("x", "sequentialish", 1024, 1.0)

    def test_rejects_unknown_sharing(self):
        with pytest.raises(ConfigurationError):
            AccessComponent("x", "cyclic", 1024, 1.0, sharing="mine")

    def test_raw_apki_for_narrow_stride(self):
        component = AccessComponent("x", "cyclic", 1 * MB, 2.0, stride=8)
        assert component.raw_apki == 16.0  # 8 accesses per 64B line

    def test_raw_apki_for_wide_stride(self):
        component = AccessComponent("x", "cyclic", 1 * MB, 2.0, stride=256)
        assert component.raw_apki == 2.0

    def test_crossing_scales_with_line_size(self):
        component = AccessComponent("x", "cyclic", 1 * MB, 4.0, stride=8)
        assert component.crossing_apki(64) == 4.0
        assert component.crossing_apki(256) == 1.0
        assert component.crossing_apki(512) == 0.5

    def test_random_crossing_is_line_size_invariant(self):
        component = AccessComponent("x", "random", 1 * MB, 3.0)
        assert component.crossing_apki(64) == component.crossing_apki(1024) == 3.0

    def test_prefetchable_patterns(self):
        assert AccessComponent("x", "cyclic", 1024, 1.0).prefetchable
        assert AccessComponent("x", "stream", 1024, 1.0).prefetchable
        assert not AccessComponent("x", "random", 1024, 1.0).prefetchable
        assert not AccessComponent("x", "pointer", 1024, 1.0).prefetchable


class TestComponentProfiles:
    def test_cyclic_mass_near_footprint(self):
        component = AccessComponent("x", "cyclic", 1 * MB, 4.0, stride=64)
        profile = component.profile(64, 1)
        footprint = 1 * MB / 64
        # Everything misses well below the working set...
        assert profile.miss_rate(footprint * 0.5) == pytest.approx(4.0)
        # ...nothing misses well above the smoothing spread.
        assert profile.miss_rate(footprint * 1.5) == pytest.approx(0.0)

    def test_stream_always_misses(self):
        component = AccessComponent("x", "stream", 1 * MB, 2.0, stride=64)
        assert component.profile(64, 1).miss_rate(1e9) == pytest.approx(2.0)

    def test_private_dilation(self):
        component = AccessComponent("x", "cyclic", 1 * MB, 1.0, stride=64, sharing="private")
        lines_16 = 16 * MB / 64
        assert component.profile(64, 16).miss_rate(lines_16 * 1.5) == pytest.approx(0.0)
        assert component.profile(64, 16).miss_rate(lines_16 * 0.5) == pytest.approx(1.0)

    def test_shared_unaffected_by_threads(self):
        component = AccessComponent("x", "random", 4 * MB, 1.0)
        one = component.profile(64, 1)
        many = component.profile(64, 32)
        for capacity in (1 * MB / 64, 2 * MB / 64, 8 * MB / 64):
            assert one.miss_rate(capacity) == pytest.approx(many.miss_rate(capacity))

    def test_same_line_hits_included(self):
        component = AccessComponent("x", "cyclic", 1 * MB, 1.0, stride=8)
        profile = component.profile(64, 1)
        assert profile.total_rate == pytest.approx(8.0)  # raw accesses
        # 7/8 of accesses are same-line and hit even a tiny cache.
        assert profile.miss_rate(4) == pytest.approx(1.0)


class TestWorkloadMemoryModel:
    def make(self, components, mem_fraction=0.5):
        return WorkloadMemoryModel("TEST", components, mem_fraction, 0.7)

    def test_apki(self):
        model = self.make([AccessComponent("x", "random", 1 * MB, 5.0)])
        assert model.apki == 500.0
        assert model.instructions_per_access == 2.0

    def test_budget_enforced(self):
        with pytest.raises(CalibrationError):
            self.make([AccessComponent("x", "random", 1 * MB, 600.0)])

    def test_llc_mpki_composition(self):
        model = self.make([
            AccessComponent("a", "stream", 1 * MB, 1.0, stride=64),
            AccessComponent("b", "cyclic", 8 * MB, 2.0, stride=64),
        ])
        # Below 8MB: both miss; above spread: only the stream.
        assert model.llc_mpki(2 * MB) == pytest.approx(3.0)
        assert model.llc_mpki(16 * MB) == pytest.approx(1.0)

    def test_footprint(self):
        model = self.make([
            AccessComponent("a", "random", 4 * MB, 1.0),
            AccessComponent("b", "random", 1 * MB, 1.0, sharing="private"),
        ])
        assert model.footprint_bytes(1) == 5 * MB
        assert model.footprint_bytes(8) == 12 * MB

    def test_prefetchable_fraction(self):
        model = self.make([
            AccessComponent("a", "stream", 1 * MB, 1.0, stride=64),
            AccessComponent("b", "pointer", 8 * MB, 1.0),
        ])
        assert model.prefetchable_miss_fraction(512 * KB) == pytest.approx(0.5, abs=0.01)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ConfigurationError):
            WorkloadMemoryModel("X", [], 0.0, 0.5)


class TestHotComponent:
    def test_fills_remainder(self):
        hot = hot_component("X", used_apki=100.0, total_apki=500.0)
        assert hot.raw_apki == pytest.approx(400.0)
        assert hot.region_bytes == 4 * KB

    def test_rejects_overcommitted_budget(self):
        with pytest.raises(CalibrationError):
            hot_component("X", used_apki=600.0, total_apki=500.0)

    def test_hot_set_always_hits_l1(self):
        hot = hot_component("X", 100.0, 500.0)
        profile = hot.profile(64, 1)
        # 8KB L1 = 128 lines; the 4KB hot set (64 lines + spread) fits.
        assert profile.miss_rate(128) == pytest.approx(0.0, abs=1e-9)
