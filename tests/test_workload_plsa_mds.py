"""Deep-dive tests: PLSA and MDS (the IPC extremes)."""

import pytest

from repro.units import MB
from repro.workloads import get_workload


class TestPLSA:
    """Paper: 83% memory instructions yet IPC 1.08 and DL2 MPKI 0.18 —
    the rolling-row DP working set fits everywhere; category A."""

    @pytest.fixture(scope="class")
    def workload(self):
        return get_workload("PLSA")

    def test_extreme_profile(self, workload):
        from repro.workloads import all_workloads

        model = workload.model
        others = [w.model for w in all_workloads() if w.name != "PLSA"]
        assert model.mem_fraction > max(o.mem_fraction for o in others)
        assert model.dl2_mpki() < min(o.dl2_mpki() for o in others)

    def test_flat_with_threads_and_size(self, workload):
        model = workload.model
        values = [
            model.llc_mpki(size, 64, cores)
            for size in (8 * MB, 64 * MB)
            for cores in (8, 32)
        ]
        assert max(values) < 0.1  # near-zero everywhere

    def test_kernel_wavefront_matches_reference_score(self, workload):
        """The single-thread kernel computes the true SW score."""
        from repro.mining.align import sw_best_score
        from repro.mining.datasets import dna_pair

        run = workload.run_kernel(thread_id=0, threads=1)
        a, b = dna_pair(length=192, seed=29)
        assert run.result == sw_best_score(a, b)

    def test_multi_thread_blocks_partition_columns(self, workload):
        runs = [workload.run_kernel(t, 4) for t in range(4)]
        # Four quarter-row blocks trace about a quarter of the work each.
        single = workload.run_kernel(0, 1)
        for run in runs:
            assert run.accesses < 0.5 * single.accesses


class TestMDS:
    """Paper: 300 MB sparse matrix, no benefit up to 256 MB, worst IPC
    (0.06), Figure 7 responder; category A."""

    @pytest.fixture(scope="class")
    def workload(self):
        return get_workload("MDS")

    def test_matrix_exceeds_every_simulated_cache(self, workload):
        by_name = {c.name: c for c in workload.model.components}
        assert by_name["mds-matrix"].region_bytes > 256 * MB

    def test_flat_curve_at_every_cmp(self, workload):
        model = workload.model
        for cores in (8, 16, 32):
            series = [
                model.llc_mpki(size * MB, 64, cores)
                for size in (4, 16, 64, 256)
            ]
            assert min(series) > 0.75 * max(series)

    def test_worst_ipc_of_the_suite(self, workload):
        from repro.perf.cpi import predicted_ipc
        from repro.workloads import all_workloads

        ipcs = {
            w.name: predicted_ipc(w.name, w.model.dl1_mpki(), w.model.dl2_mpki())
            for w in all_workloads()
        }
        assert min(ipcs, key=ipcs.get) == "MDS"
        assert ipcs["MDS"] < 0.08

    def test_kernel_power_iteration_streams_matrix(self, workload):
        run = workload.run_kernel()
        summary = run.result
        assert len(summary.selected) == 4
        # Four iterations over an n x n matrix dominate the trace.
        assert run.accesses > 4 * summary.sentences**2

    def test_responder_despite_flat_capacity_curve(self, workload):
        """The interesting MDS combination: no capacity benefit, big
        line-size benefit (streamed compressed matrix)."""
        model = workload.model
        at64 = model.llc_mpki(32 * MB, 64, 32)
        at256 = model.llc_mpki(32 * MB, 256, 32)
        assert at64 / at256 > 2.5
