"""Calibration tests: the models versus the paper's reported results.

These are the reproduction's acceptance tests — every qualitative claim
in Section 4 and every Table 2 column is asserted here, with tolerances
reflecting "shape, not absolute numbers".
"""

import pytest

from repro.core.experiment import LCMP, MCMP, SCMP, cache_size_sweep, working_set_knee
from repro.units import MB, PAPER_CACHE_SWEEP
from repro.workloads.profiles import (
    CATEGORIES,
    LINE_RESPONDERS,
    PAPER_TABLE2,
    WORKLOAD_NAMES,
    memory_model,
)

ALL = list(WORKLOAD_NAMES)


class TestTable2Calibration:
    @pytest.mark.parametrize("name", ALL)
    def test_dl1_mpki_within_tolerance(self, name):
        model = memory_model(name)
        paper = PAPER_TABLE2[name].dl1_mpki
        assert model.dl1_mpki() == pytest.approx(paper, rel=0.15)

    @pytest.mark.parametrize("name", ALL)
    def test_dl2_mpki_within_tolerance(self, name):
        model = memory_model(name)
        paper = PAPER_TABLE2[name].dl2_mpki
        assert model.dl2_mpki() == pytest.approx(paper, rel=0.25)

    @pytest.mark.parametrize("name", ALL)
    def test_apki_matches_memory_fraction(self, name):
        model = memory_model(name)
        assert model.apki == pytest.approx(PAPER_TABLE2[name].dl1_accesses_pki, rel=0.01)

    def test_dl2_ordering_preserved(self):
        """MDS worst, SNP second, PLSA best — Table 2's key ordering."""
        dl2 = {name: memory_model(name).dl2_mpki() for name in ALL}
        assert dl2["MDS"] == max(dl2.values())
        assert dl2["PLSA"] == min(dl2.values())
        assert dl2["SNP"] == sorted(dl2.values())[-2]

    def test_read_fractions_in_paper_range(self):
        """Memory reads are 56-96% of memory instructions (Section 4.2;
        SVM-RFE's 43.64/45.14 rounds to 96.7%, so the band is [0.55, 0.97])."""
        for name in ALL:
            assert 0.55 <= memory_model(name).read_fraction <= 0.97

    def test_plsa_is_most_memory_intensive(self):
        fractions = {name: memory_model(name).mem_fraction for name in ALL}
        assert fractions["PLSA"] == max(fractions.values())
        assert fractions["PLSA"] == pytest.approx(0.831)


class TestFigure4WorkingSets:
    """Section 4.3's SCMP readings."""

    def sweep(self, name, cmp_config=SCMP):
        return cache_size_sweep(memory_model(name), cmp_config, PAPER_CACHE_SWEEP)

    def test_snp_has_two_working_sets(self):
        mpki = dict(self.sweep("SNP"))
        # Big drops crossing 16MB and crossing 128MB; plateau between.
        assert mpki[16 * MB] < 0.6 * mpki[8 * MB]
        assert mpki[64 * MB] > 0.7 * mpki[32 * MB]
        assert mpki[256 * MB] < 0.5 * mpki[64 * MB]

    def test_mds_flat_everywhere(self):
        mpki = [m for _, m in self.sweep("MDS")]
        assert min(mpki) > 0.75 * max(mpki)
        assert working_set_knee(self.sweep("MDS")) is None

    def test_shot_knee_at_32mb(self):
        assert working_set_knee(self.sweep("SHOT"), drop_fraction=0.3) == 32 * MB

    def test_viewtype_and_fimi_knees_at_16mb(self):
        assert working_set_knee(self.sweep("VIEWTYPE"), drop_fraction=0.3) == 16 * MB
        assert working_set_knee(self.sweep("FIMI"), drop_fraction=0.3) == 16 * MB

    @pytest.mark.parametrize("name", ["SVM-RFE", "PLSA", "RSEARCH"])
    def test_small_working_set_workloads_low_by_4mb(self, name):
        """The 4MB-working-set trio is already near its floor at 4MB."""
        mpki = dict(self.sweep(name))
        assert mpki[8 * MB] < 0.35 * PAPER_TABLE2[name].dl2_mpki

    @pytest.mark.parametrize("name", ALL)
    def test_curves_monotone_non_increasing(self, name):
        mpki = [m for _, m in self.sweep(name)]
        assert all(a >= b - 1e-9 for a, b in zip(mpki, mpki[1:]))


class TestThreadScaling:
    """Figures 5 and 6: the Section 4.3 sharing taxonomy."""

    @pytest.mark.parametrize("name", [n for n in ALL if CATEGORIES[n] == "A"])
    def test_category_a_invariant_with_cores(self, name):
        model = memory_model(name)
        for size in (8 * MB, 32 * MB, 128 * MB):
            scmp = model.llc_mpki(size, 64, 8)
            lcmp = model.llc_mpki(size, 64, 32)
            assert lcmp == pytest.approx(scmp, rel=0.05, abs=0.01)

    @pytest.mark.parametrize("name", ["FIMI", "RSEARCH"])
    def test_category_b_misses_grow_moderately(self, name):
        """Private per-thread data adds 10-60% more misses overall."""
        model = memory_model(name)
        scmp = sum(model.llc_mpki(s, 64, 8) for s in PAPER_CACHE_SWEEP)
        lcmp = sum(model.llc_mpki(s, 64, 32) for s in PAPER_CACHE_SWEEP)
        assert 1.05 < lcmp / scmp < 1.8

    @pytest.mark.parametrize("name", ["SHOT", "VIEWTYPE"])
    def test_category_c_jump_at_32mb(self, name):
        """Paper: ~50-60% more misses at a 32MB cache going 8→16 cores."""
        model = memory_model(name)
        ratio = model.llc_mpki(32 * MB, 64, 16) / model.llc_mpki(32 * MB, 64, 8)
        assert 1.2 < ratio < 2.2

    def test_category_c_knees_double_with_cores(self):
        for name, knees in (("SHOT", (32, 64, 128)), ("VIEWTYPE", (16, 32, 64))):
            model = memory_model(name)
            for cmp_config, expected in zip((SCMP, MCMP, LCMP), knees):
                sweep = cache_size_sweep(model, cmp_config, PAPER_CACHE_SWEEP)
                assert working_set_knee(sweep, drop_fraction=0.25) == expected * MB

    def test_rsearch_working_set_scales(self):
        """RSEARCH: 4MB → 8MB → 16MB across SCMP/MCMP/LCMP."""
        model = memory_model("RSEARCH")
        # At 4MB the SCMP fits but MCMP/LCMP private charts overflow.
        scmp = model.llc_mpki(4 * MB, 64, 8)
        mcmp = model.llc_mpki(4 * MB, 64, 16)
        lcmp = model.llc_mpki(4 * MB, 64, 32)
        assert mcmp > 1.2 * scmp
        assert lcmp > mcmp

    def test_fimi_lcmp_has_misses_beyond_16mb(self):
        """Paper: FIMI's LCMP working set grows to ~32MB."""
        model = memory_model("FIMI")
        at16_scmp = model.llc_mpki(16 * MB, 64, 8)
        at16_lcmp = model.llc_mpki(16 * MB, 64, 32)
        assert at16_lcmp > 1.15 * at16_scmp


class TestFigure7LineSizes:
    def reduction(self, name, threads=32, cache=32 * MB):
        model = memory_model(name)
        at64 = model.llc_mpki(cache, 64, threads)
        at256 = model.llc_mpki(cache, 256, threads)
        return at64 / at256 if at256 > 1e-12 else float("inf")

    @pytest.mark.parametrize("name", LINE_RESPONDERS)
    def test_responders_near_linear(self, name):
        """SHOT, MDS, SNP, SVM-RFE: ~3-4x fewer misses at 256B lines."""
        assert self.reduction(name) > 2.5

    @pytest.mark.parametrize("name", [n for n in ALL if n not in LINE_RESPONDERS])
    def test_non_responders_modest(self, name):
        assert 1.0 < self.reduction(name) < 2.5

    @pytest.mark.parametrize("name", ALL)
    def test_everyone_improves_with_line_size(self, name):
        """Section 4.3: all workloads achieve better cache performance
        with bigger lines."""
        model = memory_model(name)
        at64 = model.llc_mpki(32 * MB, 64, 32)
        at256 = model.llc_mpki(32 * MB, 256, 32)
        assert at256 < at64

    @pytest.mark.parametrize("name", ALL)
    def test_diminishing_returns_past_256(self, name):
        """The 64→256B gain exceeds the 256→1024B gain (the paper's
        256-byte sweet spot)."""
        model = memory_model(name)
        at64 = model.llc_mpki(32 * MB, 64, 32)
        at256 = model.llc_mpki(32 * MB, 256, 32)
        at1024 = model.llc_mpki(32 * MB, 1024, 32)
        assert (at64 - at256) >= (at256 - at1024) - 1e-9


class TestCategories:
    def test_taxonomy_complete(self):
        assert set(CATEGORIES) == set(ALL)
        assert set(CATEGORIES.values()) == {"A", "B", "C"}

    def test_private_footprint_only_in_b_and_c(self):
        for name in ALL:
            model = memory_model(name)
            growth = model.footprint_bytes(32) / model.footprint_bytes(1)
            if CATEGORIES[name] == "C":
                assert growth > 8  # near-linear growth
            elif CATEGORIES[name] == "A":
                assert growth < 2.0
