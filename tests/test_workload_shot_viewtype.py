"""Deep-dive tests: SHOT and VIEWTYPE (the category-C pair)."""

import numpy as np
import pytest

from repro.core.experiment import LCMP, MCMP, SCMP, cache_size_sweep, working_set_knee
from repro.units import MB, PAPER_CACHE_SWEEP
from repro.workloads import get_workload


class TestSHOT:
    """Paper: ~4 MB private per thread, working set 32/64/128 MB across
    CMPs, near-linear Figure 7 gains, prefetch-friendly streaming."""

    @pytest.fixture(scope="class")
    def workload(self):
        return get_workload("SHOT")

    def test_everything_big_is_private(self, workload):
        for component in workload.model.components:
            if component.region_bytes > 1 * MB:
                assert component.sharing == "private", component.name

    def test_per_thread_footprint_near_4mb(self, workload):
        per_thread = workload.model.footprint_bytes(1)
        assert 2 * MB < per_thread < 6 * MB

    def test_knee_doubles_with_cores(self, workload):
        for cmp_config, expected_mb in ((SCMP, 32), (MCMP, 64), (LCMP, 128)):
            sweep = cache_size_sweep(workload.model, cmp_config, PAPER_CACHE_SWEEP)
            assert working_set_knee(sweep, drop_fraction=0.25) == expected_mb * MB

    def test_highest_prefetch_coverage(self, workload):
        from repro.perf.prefetch_study import coverage_at

        assert coverage_at(workload.model, 512 * 1024) > 0.85

    def test_kernels_of_different_threads_are_disjoint(self, workload):
        run0 = workload.run_kernel(0, 2)
        run1 = workload.run_kernel(1, 2)
        lines0 = set(np.unique(run0.trace.lines(64)).tolist())
        lines1 = set(np.unique(run1.trace.lines(64)).tolist())
        assert not lines0 & lines1

    def test_kernel_detects_its_shot_boundaries(self, workload):
        run = workload.run_kernel()
        boundaries = run.result
        assert boundaries[0] == 0
        assert all(b < 16 for b in boundaries)


class TestVIEWTYPE:
    """Paper: 1-2 MB private per thread, working set 16/32/64 MB,
    modest Figure 7 gains (the two-pass mask scans)."""

    @pytest.fixture(scope="class")
    def workload(self):
        return get_workload("VIEWTYPE")

    def test_smaller_per_thread_than_shot(self, workload):
        shot = get_workload("SHOT")
        assert workload.model.footprint_bytes(1) < shot.model.footprint_bytes(1)

    def test_knees_track_paper(self, workload):
        for cmp_config, expected_mb in ((SCMP, 16), (MCMP, 32), (LCMP, 64)):
            sweep = cache_size_sweep(workload.model, cmp_config, PAPER_CACHE_SWEEP)
            assert working_set_knee(sweep, drop_fraction=0.25) == expected_mb * MB

    def test_not_a_line_responder(self, workload):
        model = workload.model
        reduction = model.llc_mpki(32 * MB, 64, 32) / model.llc_mpki(32 * MB, 256, 32)
        assert reduction < 2.5

    def test_kernel_classifies_views(self, workload):
        run = workload.run_kernel()
        views = run.result
        assert len(views) == 10
        assert set(views) <= {"global", "medium", "closeup", "outofview"}

    def test_category_c_exact_path_scaling(self, workload):
        """Exact path: more threads, more distinct lines on the bus."""
        from repro.trace.stream import materialize, round_robin_interleave

        two = materialize(
            round_robin_interleave(
                [[workload.run_kernel(t, 2).trace] for t in range(2)], quantum=256
            )
        )
        four = materialize(
            round_robin_interleave(
                [[workload.run_kernel(t, 4).trace] for t in range(4)], quantum=256
            )
        )
        distinct_two = len(np.unique(two.lines(64)))
        distinct_four = len(np.unique(four.lines(64)))
        assert distinct_four > 1.5 * distinct_two
