"""Deep-dive tests: SNP and SVM-RFE against their paper claims."""

import numpy as np
import pytest

from repro.core.experiment import SCMP, cache_size_sweep
from repro.units import KB, MB, PAPER_CACHE_SWEEP
from repro.workloads import get_workload


class TestSNP:
    """Paper: two working sets (16 MB, 128 MB); category A; Figure 7
    responder; IPC 0.12 from high exposed memory stalls."""

    @pytest.fixture(scope="class")
    def workload(self):
        return get_workload("SNP")

    def test_component_structure(self, workload):
        names = {c.name for c in workload.model.components}
        assert {"snp-counts", "snp-matrix", "snp-l2"} <= names
        by_name = {c.name: c for c in workload.model.components}
        assert by_name["snp-counts"].region_bytes < by_name["snp-matrix"].region_bytes
        assert by_name["snp-matrix"].sharing == "shared"

    def test_two_plateaus_in_the_curve(self, workload):
        sweep = dict(cache_size_sweep(workload.model, SCMP, PAPER_CACHE_SWEEP))
        # Plateau between the knees: 32 and 64 MB within 10%.
        assert sweep[64 * MB] == pytest.approx(sweep[32 * MB], rel=0.10)
        # Both knees drop at least 25%.
        assert sweep[16 * MB] < 0.75 * sweep[8 * MB]
        assert sweep[256 * MB] < 0.75 * sweep[64 * MB]

    def test_kernel_learns_structure_from_linked_loci(self, workload):
        run = workload.run_kernel()
        net, score = run.result
        assert len(net.edges()) >= 1
        # All threads would study the same matrix: run twice, same trace.
        run2 = workload.run_kernel()
        assert np.array_equal(run.trace.addresses, run2.trace.addresses)

    def test_kernel_is_column_scan_dominated(self, workload):
        from repro.trace.stats import stride_histogram

        run = workload.run_kernel()
        histogram = stride_histogram(run.trace, top=4)
        # Column scans of a (rows x 10) uint8 matrix stride by ~10 bytes.
        assert any(0 < abs(s) <= 64 for s in histogram)


class TestSVMRFE:
    """Paper: 4 MB working set (data-blocked), huge DL1 MPKI (61.4)
    with high IPC (0.87) — overlap-heavy streaming; category A."""

    @pytest.fixture(scope="class")
    def workload(self):
        return get_workload("SVM-RFE")

    def test_highest_dl1_mpki_of_all_workloads(self, workload):
        from repro.workloads import all_workloads

        dl1 = {w.name: w.model.dl1_mpki() for w in all_workloads()}
        assert max(dl1, key=dl1.get) == "SVM-RFE"

    def test_blocked_tile_dominates_l2_traffic(self, workload):
        by_name = {c.name: c for c in workload.model.components}
        tile = by_name["svm-tile"]
        assert 8 * KB < tile.region_bytes <= 512 * KB
        assert tile.apki64 == pytest.approx(61.40 - 2.96)

    def test_small_llc_suffices(self, workload):
        """Beyond 4MB the model is at its stream floor everywhere."""
        model = workload.model
        for cores in (8, 16, 32):
            floor = model.llc_mpki(256 * MB, 64, cores)
            assert model.llc_mpki(8 * MB, 64, cores) == pytest.approx(
                floor, rel=0.05, abs=0.02
            )

    def test_exposure_is_lowest(self):
        """The overlap story: SVM-RFE hides more miss latency than
        anyone (high IPC despite the DL1 miss storm)."""
        from repro.workloads.profiles import CPI_PARAMETERS

        exposures = {name: p.exposure for name, p in CPI_PARAMETERS.items()}
        assert min(exposures, key=exposures.get) == "SVM-RFE"

    def test_kernel_selects_informative_genes(self, workload):
        run = workload.run_kernel()
        selected = run.result
        assert len(selected) == 6
        assert len(set(selected)) == 6
