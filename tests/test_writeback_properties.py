"""Tests for write-back L1 mode plus property tests for the new caches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheConfig
from repro.cache.dramsim import DramCacheConfig, DramCacheSim
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.sector import SectorCache, SectorCacheConfig
from repro.trace.generators import Region, cyclic_scan
from repro.trace.record import AccessKind, TraceChunk
from repro.units import KB, MB


def write_back_hierarchy(cores: int = 1) -> CacheHierarchy:
    return CacheHierarchy(
        HierarchyConfig(
            l1=CacheConfig(size=1 * KB, line_size=64, associativity=4, name="L1"),
            llc=CacheConfig(size=16 * KB, line_size=64, associativity=8, name="LLC"),
            cores=cores,
            write_back_l1=True,
        )
    )


class TestWriteBackMode:
    def test_write_hit_stays_in_l1(self):
        hierarchy = write_back_hierarchy()
        hierarchy.access(0x100, AccessKind.READ)   # fill
        llc_before = hierarchy.llc.stats.accesses
        hierarchy.access(0x100, AccessKind.WRITE)  # dirty the line
        assert hierarchy.llc.stats.accesses == llc_before  # absorbed

    def test_dirty_eviction_writes_back(self):
        hierarchy = write_back_hierarchy()
        # Set 0 holds 4 ways; dirty one line, then evict it with 4 more
        # same-set fills (lines spaced by num_sets*64 = 4*64).
        hierarchy.access(0x0, AccessKind.WRITE)
        for i in range(1, 5):
            hierarchy.access(i * 4 * 64, AccessKind.READ)
        assert hierarchy.writebacks == 1
        assert hierarchy.llc.stats.writes == 1

    def test_clean_eviction_is_silent(self):
        hierarchy = write_back_hierarchy()
        hierarchy.access(0x0, AccessKind.READ)
        for i in range(1, 5):
            hierarchy.access(i * 4 * 64, AccessKind.READ)
        assert hierarchy.writebacks == 0

    def test_write_back_reduces_llc_write_traffic(self):
        """The mode's purpose: repeated writes to hot lines coalesce."""
        trace_region = Region(0, 512)
        writes = cyclic_scan(trace_region, passes=50, stride=64, write_fraction=1.0)
        through = CacheHierarchy(
            HierarchyConfig(
                l1=CacheConfig(size=1 * KB, line_size=64, associativity=4),
                llc=CacheConfig(size=16 * KB, line_size=64, associativity=8),
            )
        )
        through.access_chunk(writes.with_core(0))
        back = write_back_hierarchy()
        back.access_chunk(writes.with_core(0))
        assert back.llc.stats.accesses < 0.1 * through.llc.stats.accesses

    def test_rewrite_of_dirty_line_no_extra_writeback(self):
        hierarchy = write_back_hierarchy()
        hierarchy.access(0x0, AccessKind.WRITE)
        hierarchy.access(0x0, AccessKind.WRITE)
        for i in range(1, 5):
            hierarchy.access(i * 4 * 64, AccessKind.READ)
        assert hierarchy.writebacks == 1


addresses_strategy = st.lists(
    st.tuples(st.integers(0, 255), st.booleans()), min_size=1, max_size=300
)


class TestSectorCacheProperties:
    @given(operations=addresses_strategy)
    @settings(max_examples=40, deadline=None)
    def test_accounting_invariants(self, operations):
        cache = SectorCache(
            SectorCacheConfig(size=8 * KB, sector_size=512, subblock_size=64,
                              associativity=4)
        )
        for slot, is_write in operations:
            cache.access(slot * 64, AccessKind.WRITE if is_write else AccessKind.READ)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert stats.bytes_transferred == stats.misses * 64

    @given(operations=addresses_strategy)
    @settings(max_examples=30, deadline=None)
    def test_immediate_rereference_hits(self, operations):
        cache = SectorCache(
            SectorCacheConfig(size=8 * KB, sector_size=512, subblock_size=64,
                              associativity=4)
        )
        for slot, _ in operations:
            cache.access(slot * 64)
            assert cache.access(slot * 64)  # same sub-block: must hit


class TestDramSimProperties:
    @given(operations=addresses_strategy)
    @settings(max_examples=30, deadline=None)
    def test_latency_and_counter_invariants(self, operations):
        sim = DramCacheSim(
            DramCacheConfig(capacity=1 * MB, line_size=256, associativity=4, banks=4)
        )
        config = sim.config
        for slot, is_write in operations:
            latency = sim.access(
                slot * 256, AccessKind.WRITE if is_write else AccessKind.READ
            )
            minimum = config.tag_latency + config.row_hit_latency
            maximum = (
                config.tag_latency + config.memory_latency + config.row_conflict_latency
            )
            assert minimum <= latency <= maximum
        stats = sim.stats
        assert stats.row_hits + stats.row_conflicts == stats.accesses
        assert stats.content_hits <= stats.accesses
